package report

import (
	"fmt"
	"strings"
)

// ServingRow is one operation's row in the load-test summary table: request
// count, errors, and the latency quantiles the serving trajectory tracks.
type ServingRow struct {
	Op       string
	Requests int64
	Errors   int64
	P50Ms    float64
	P90Ms    float64
	P99Ms    float64
	MaxMs    float64
}

// ServingResilience carries the fault/retry accounting of a load run for the
// summary's resilience line: client-side retries and breaker rejections,
// server-side shed requests and injected faults.
type ServingResilience struct {
	Retries        int64
	BreakerRejects int64
	RequestsShed   int64
	FaultsInjected int64
}

func (r ServingResilience) any() bool {
	return r.Retries != 0 || r.BreakerRejects != 0 || r.RequestsShed != 0 || r.FaultsInjected != 0
}

// ServingSummary renders the adload human-readable result: one aligned row
// per operation plus the run totals line, in the style of the paper-table
// formatters above. A resilience line is appended when any retries, breaker
// rejections, shed requests, or injected faults occurred.
func ServingSummary(title string, rows []ServingRow, wallSeconds, throughputRPS float64, totalErrors int64, res ServingResilience) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-18s %9s %7s %10s %10s %10s %10s\n",
		"Operation", "Requests", "Errors", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9d %7d %10.3f %10.3f %10.3f %10.3f\n",
			r.Op, r.Requests, r.Errors, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	}
	fmt.Fprintf(&b, "%-18s %.2fs wall, %.1f req/s, %d errors\n", "total", wallSeconds, throughputRPS, totalErrors)
	if res.any() {
		fmt.Fprintf(&b, "%-18s %d injected faults, %d retries, %d shed, %d breaker rejects\n",
			"resilience", res.FaultsInjected, res.Retries, res.RequestsShed, res.BreakerRejects)
	}
	return b.String()
}
