package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/adaudit/impliedidentity/internal/core"
	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/stats"
)

// Figure1 renders the headline job-ad contrast.
func Figure1(res *core.Figure1Result) string {
	var b strings.Builder
	b.WriteString("Figure 1 — identical lumber job ads, different pictured person (measured | paper)\n")
	fmt.Fprintf(&b, "  white man pictured : %5.1f%% white delivery  %s | 56%%\n",
		100*res.WhiteImageFracWhite, bar(res.WhiteImageFracWhite, 0, 1, 24))
	fmt.Fprintf(&b, "  Black man pictured : %5.1f%% white delivery  %s | 29%%\n",
		100*res.BlackImageFracWhite, bar(res.BlackImageFracWhite, 0, 1, 24))
	if res.WhiteImageCountable > 0 {
		fmt.Fprintf(&b, "  two-proportion z-test on the gap: z=%.2f, p=%.2g (%d vs %d countable impressions)\n",
			res.Test.Z, res.Test.P, res.WhiteImageCountable, res.BlackImageCountable)
	}
	return b.String()
}

// figure3Series computes the per-(implied age, group) means for a Figure 3
// style panel.
func figure3Series(ds []core.Delivery, metric func(*core.Delivery) float64, group func(*core.Delivery) bool) []float64 {
	out := make([]float64, 0, demo.NumImpliedAges)
	for _, a := range demo.AllImpliedAges() {
		a := a
		v, _ := core.GroupMean(ds,
			func(d *core.Delivery) bool { return d.Profile.Age == a && group(d) },
			metric)
		out = append(out, v)
	}
	return out
}

// panel renders two series over the implied-age axis as aligned gauges.
func panel(title, leftLabel, rightLabel string, left, right []float64, lo, hi float64, pct bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	ages := demo.AllImpliedAges()
	for i := range ages {
		lv, rv := left[i], right[i]
		if pct {
			fmt.Fprintf(&b, "  %-12s %-14s %5.1f%% %s   %-14s %5.1f%% %s\n",
				ages[i], leftLabel, 100*lv, bar(lv, lo, hi, 16), rightLabel, 100*rv, bar(rv, lo, hi, 16))
		} else {
			fmt.Fprintf(&b, "  %-12s %-14s %5.1f %s   %-14s %5.1f %s\n",
				ages[i], leftLabel, lv, bar(lv, lo, hi, 16), rightLabel, rv, bar(rv, lo, hi, 16))
		}
	}
	return b.String()
}

// Figure3 renders the four delivery panels for a stock (or, as Figure 5,
// synthetic) campaign.
func Figure3(ds []core.Delivery, figureName string) string {
	isWhite := func(d *core.Delivery) bool { return d.Profile.Race == demo.RaceWhite }
	isBlack := func(d *core.Delivery) bool { return d.Profile.Race == demo.RaceBlack }
	isMale := func(d *core.Delivery) bool { return d.Profile.Gender == demo.GenderMale }
	isFemale := func(d *core.Delivery) bool { return d.Profile.Gender == demo.GenderFemale }
	fracBlack := func(d *core.Delivery) float64 { return d.FracBlack }
	fracFemale := func(d *core.Delivery) float64 { return d.FracFemale }
	avgAge := func(d *core.Delivery) float64 { return d.AvgAge }

	var b strings.Builder
	fmt.Fprintf(&b, "%s — delivery by implied age of the pictured person\n", figureName)
	b.WriteString(panel("A) fraction of audience self-reported Black (white-image vs Black-image ads)",
		"white:", "Black:",
		figure3Series(ds, fracBlack, isWhite), figure3Series(ds, fracBlack, isBlack), 0.2, 0.9, true))
	b.WriteString(panel("B) average age of the reached audience (white-image vs Black-image ads)",
		"white:", "Black:",
		figure3Series(ds, avgAge, isWhite), figure3Series(ds, avgAge, isBlack), 30, 65, false))
	b.WriteString(panel("C) fraction of audience self-reported female (male-image vs female-image ads)",
		"male:", "female:",
		figure3Series(ds, fracFemale, isMale), figure3Series(ds, fracFemale, isFemale), 0.2, 0.8, true))
	b.WriteString(panel("D) average age of the reached audience (male-image vs female-image ads)",
		"male:", "female:",
		figure3Series(ds, avgAge, isMale), figure3Series(ds, avgAge, isFemale), 30, 65, false))
	return b.String()
}

// Figure4 renders the older-audience panels.
func Figure4(points []core.Fig4Point) string {
	var b strings.Builder
	b.WriteString("Figure 4 — fraction of men (A) and women (B) aged 55+ in the audience\n")
	b.WriteString("A) men 55+:\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-12s male-img %5.1f%% %s   fem-img %5.1f%% %s\n",
			p.ImpliedAge, 100*p.MaleImgMen55, bar(p.MaleImgMen55, 0, 0.6, 16),
			100*p.FemImgMen55, bar(p.FemImgMen55, 0, 0.6, 16))
	}
	b.WriteString("B) women 55+:\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-12s male-img %5.1f%% %s   fem-img %5.1f%% %s\n",
			p.ImpliedAge, 100*p.MaleImgWom55, bar(p.MaleImgWom55, 0, 0.6, 16),
			100*p.FemImgWom55, bar(p.FemImgWom55, 0, 0.6, 16))
	}
	return b.String()
}

// Figure6 renders the latent-attribute sweep for one synthetic person.
func Figure6(sweep []core.SweepCell) string {
	var b strings.Builder
	b.WriteString("Figure 6 — attribute sweep of one synthetic person (target → classifier reading)\n")
	fmt.Fprintf(&b, "%-28s %-28s %6s %10s\n", "target", "classified as", "match", "nuisanceΔ")
	matched := 0
	for _, c := range sweep {
		ok := " no"
		if c.Classified.Gender == c.Target.Gender && c.Classified.Race == c.Target.Race {
			ok = "yes"
			matched++
		}
		fmt.Fprintf(&b, "%-28s %-28s %6s %10.3f\n", c.Target, c.Classified, ok, c.NuisanceDistance)
	}
	fmt.Fprintf(&b, "gender+race agreement: %d/%d variants\n", matched, len(sweep))
	return b.String()
}

// Figure7 renders the employment-ad skew scatter as a congruence table.
func Figure7(race []core.Fig7RacePoint, gender []core.Fig7GenderPoint) string {
	var b strings.Builder
	b.WriteString("Figure 7 — employment ads with composited faces\n")
	b.WriteString("A) % Black delivery: Black-face ad vs white-face ad (congruent when Black > white)\n")
	sorted := append([]core.Fig7RacePoint(nil), race...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Job != sorted[j].Job {
			return sorted[i].Job < sorted[j].Job
		}
		return sorted[i].ImpliedGender < sorted[j].ImpliedGender
	})
	for _, p := range sorted {
		mark := "congruent  "
		if p.BlackImage <= p.WhiteImage {
			mark = "incongruent"
		}
		fmt.Fprintf(&b, "  %-18s %-7s black-img %5.1f%%  white-img %5.1f%%  %s\n",
			p.Job, p.ImpliedGender, 100*p.BlackImage, 100*p.WhiteImage, mark)
	}
	fmt.Fprintf(&b, "  congruent share: %.0f%% (paper: 'the vast majority')\n", 100*core.CongruentRaceShare(race))
	b.WriteString("B) % female delivery: female-face ad vs male-face ad\n")
	sortedG := append([]core.Fig7GenderPoint(nil), gender...)
	sort.Slice(sortedG, func(i, j int) bool {
		if sortedG[i].Job != sortedG[j].Job {
			return sortedG[i].Job < sortedG[j].Job
		}
		return sortedG[i].ImpliedRace < sortedG[j].ImpliedRace
	})
	var congruentG int
	for _, p := range sortedG {
		if p.FemaleImage > p.MaleImage {
			congruentG++
		}
		fmt.Fprintf(&b, "  %-18s %-7s fem-img %5.1f%%  male-img %5.1f%%\n",
			p.Job, p.ImpliedRace, 100*p.FemaleImage, 100*p.MaleImage)
	}
	fmt.Fprintf(&b, "  congruent share: %.0f%% (paper: roughly even — no systematic gender skew)\n",
		100*float64(congruentG)/float64(len(sortedG)))
	return b.String()
}

// Figure2Validation renders the E11 methodology-validation summary.
func Figure2Validation(res *core.ValidationResult) string {
	var b strings.Builder
	b.WriteString("Figure 2 methodology validation — inferred vs true racial makeup (oracle)\n")
	fmt.Fprintf(&b, "  ads measured:            %d\n", res.Ads)
	fmt.Fprintf(&b, "  mean |inferred - true|:  %.4f\n", res.MeanAbsError)
	fmt.Fprintf(&b, "  max  |inferred - true|:  %.4f\n", res.MaxAbsError)
	fmt.Fprintf(&b, "  out-of-state delivery:   %.2f%% (paper: <1%% for state splits)\n", 100*res.MeanOutOfState)
	return b.String()
}

// PovertySummary renders the Appendix A context numbers.
func PovertySummary(res *core.PovertyResult) string {
	var b strings.Builder
	b.WriteString("Appendix A — poverty-controlled experiment\n")
	fmt.Fprintf(&b, "  median ZIP poverty, white-targeted voters: %.1f%% (paper: 12%%)\n", 100*res.PreMedianWhite)
	fmt.Fprintf(&b, "  median ZIP poverty, Black-targeted voters: %.1f%% (paper: 16%%)\n", 100*res.PreMedianBlack)
	fmt.Fprintf(&b, "  pre-matching  Welch t: Δ=%.4f p=%.2g\n", res.PreTest.DeltaM, res.PreTest.P)
	fmt.Fprintf(&b, "  post-matching Welch t: Δ=%.4f p=%.2g\n", res.PostTest.DeltaM, res.PostTest.P)
	fmt.Fprintf(&b, "  audience size: %d -> %d after matching (paper: 2,870,772 -> 1,730,212 per state)\n",
		res.AudienceBefore, res.AudienceAfter)
	fmt.Fprintf(&b, "  ads rejected by review: %d of %d (paper: 44 of 100 after appeal)\n",
		res.RejectedSpecs, res.RejectedSpecs+res.SurvivingSpecs)
	return b.String()
}

// Figure3RaceCI renders panel A of Figure 3 with bootstrap 95% confidence
// intervals over the per-ad delivery fractions — the uncertainty the paper
// conveys by plotting every ad as a tick mark.
func Figure3RaceCI(ds []core.Delivery, seed int64) string {
	var b strings.Builder
	b.WriteString("Figure 3A with bootstrap 95% CIs — fraction of audience self-reported Black\n")
	for _, a := range demo.AllImpliedAges() {
		a := a
		fmt.Fprintf(&b, "  %-12s", a)
		for _, race := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
			race := race
			var vals []float64
			for i := range ds {
				d := &ds[i]
				if d.Profile.Age == a && d.Profile.Race == race {
					vals = append(vals, d.FracBlack)
				}
			}
			if len(vals) < 2 {
				fmt.Fprintf(&b, "  %s-img: (insufficient ads)", race)
				continue
			}
			lo, hi, err := stats.BootstrapMeanCI(vals, 400, 0.95, seed)
			if err != nil {
				fmt.Fprintf(&b, "  %s-img: (CI error: %v)", race, err)
				continue
			}
			fmt.Fprintf(&b, "  %s-img %5.1f%% [%4.1f, %4.1f]", race, 100*stats.Mean(vals), 100*lo, 100*hi)
		}
		b.WriteString("\n")
	}
	return b.String()
}
