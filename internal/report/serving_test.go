package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/core"
	"github.com/adaudit/impliedidentity/internal/demo"
)

func TestServingSummaryGolden(t *testing.T) {
	rows := []ServingRow{
		{Op: "create_ad", Requests: 1200, Errors: 3, P50Ms: 1.5, P90Ms: 4.25, P99Ms: 9.125, MaxMs: 31.5},
		{Op: "deliver", Requests: 40, Errors: 0, P50Ms: 120, P90Ms: 180.5, P99Ms: 240.125, MaxMs: 260},
	}
	res := ServingResilience{Retries: 17, BreakerRejects: 2, RequestsShed: 5, FaultsInjected: 41}
	got := ServingSummary("adload summary", rows, 12.5, 99.2, 3, res)
	want := "adload summary\n" +
		"Operation           Requests  Errors   p50 (ms)   p90 (ms)   p99 (ms)   max (ms)\n" +
		"create_ad               1200       3      1.500      4.250      9.125     31.500\n" +
		"deliver                   40       0    120.000    180.500    240.125    260.000\n" +
		"total              12.50s wall, 99.2 req/s, 3 errors\n" +
		"resilience         41 injected faults, 17 retries, 5 shed, 2 breaker rejects\n"
	if got != want {
		t.Errorf("ServingSummary golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestServingSummaryOmitsQuietResilienceLine(t *testing.T) {
	got := ServingSummary("quiet run", []ServingRow{{Op: "insights", Requests: 10}}, 1, 10, 0, ServingResilience{})
	if strings.Contains(got, "resilience") {
		t.Errorf("clean run should not print a resilience line:\n%s", got)
	}
	// Any single non-zero counter brings the line back.
	for _, res := range []ServingResilience{
		{Retries: 1}, {BreakerRejects: 1}, {RequestsShed: 1}, {FaultsInjected: 1},
	} {
		out := ServingSummary("one fault", nil, 1, 0, 0, res)
		if !strings.Contains(out, "resilience") {
			t.Errorf("resilience %+v should print the line:\n%s", res, out)
		}
	}
}

func TestDeliveriesCSVGoldenRow(t *testing.T) {
	ds := []core.Delivery{{
		Key: "lumber-bm",
		Profile: demo.Profile{
			Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult,
		},
		Job:         "lumber",
		Impressions: 1234, Reach: 900, Clicks: 17,
		SpendCents: 420.5, FracBlack: 0.651, FracFemale: 0.25,
		FracAge35Plus: 0.5, FracAge45Plus: 0.25, FracAge65Plus: 0.1,
		AvgAge: 41.75, FracMen55Plus: 0.08, FracWomen55Plus: 0.04,
		OutOfState: 0.005,
	}}
	var buf bytes.Buffer
	if err := DeliveriesCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row:\n%s", len(lines), buf.String())
	}
	wantRow := "lumber-bm," + ds[0].Profile.Race.String() + "," + ds[0].Profile.Gender.String() + "," +
		ds[0].Profile.Age.String() + ",lumber,1234,900,17," +
		"420.500000,0.651000,0.250000,0.500000,0.250000,0.100000,41.750000,0.080000,0.040000,0.005000"
	if lines[1] != wantRow {
		t.Errorf("CSV row mismatch:\ngot:  %s\nwant: %s", lines[1], wantRow)
	}
}

type failingWriter struct{ err error }

func (w failingWriter) Write([]byte) (int, error) { return 0, w.err }

func TestDeliveriesCSVWriterError(t *testing.T) {
	sentinel := errors.New("disk full")
	err := DeliveriesCSV(failingWriter{err: sentinel}, sampleDeliveries())
	if err == nil {
		t.Fatal("want an error from a failing writer")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v should wrap the writer's error", err)
	}
}
