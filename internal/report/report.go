// Package report renders the reproduction's results as the tables and
// figures the paper presents: aligned ASCII tables for Tables 1-5 and A1,
// dot/line plots for Figures 3-7, and CSV emitters for downstream analysis.
// Each formatter includes the paper's reported values alongside the measured
// ones so the shape comparison is visible in one place.
package report

import (
	"fmt"
	"math"
	"strings"

	"github.com/adaudit/impliedidentity/internal/core"
	"github.com/adaudit/impliedidentity/internal/stats"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// bar renders v within [lo, hi] as a fixed-width ASCII gauge.
func bar(v, lo, hi float64, width int) string {
	if width <= 0 {
		width = 20
	}
	frac := (v - lo) / (hi - lo)
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// Table1 renders the stratified-sample breakdown with the paper's values
// for reference.
func Table1(rows []voter.Table1Row) string {
	paper := map[string]int{
		"18-24": 44968, "25-34": 53586, "35-44": 51469,
		"45-54": 61893, "55-64": 68211, "65+": 78719,
	}
	var b strings.Builder
	b.WriteString("Table 1 — balanced target audience (per race×gender cell and total per age range)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %16s\n", "Age", "Group size", "Total", "Paper group size")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %12d %16d\n", r.Age, r.GroupSize, r.Total, paper[r.Age.String()])
	}
	return b.String()
}

// Table2 renders the campaign ledger.
func Table2(rows []core.Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2 — campaign overview\n")
	fmt.Fprintf(&b, "%-40s %5s %9s %-24s %8s %12s %10s %8s\n",
		"Campaign", "Ads", "Age-limit", "Images", "Reach", "Impressions", "Spend", "Section")
	for _, r := range rows {
		limit := "No"
		if r.AgeLimit {
			limit = "Yes"
		}
		fmt.Fprintf(&b, "%-40s %5d %9s %-24s %8d %12d %9.2f$ %8s\n",
			r.Campaign, r.Ads, limit, r.Images, r.Reach, r.Impressions, r.SpendDollars, r.Section)
	}
	return b.String()
}

// paperTable3 holds the published Table 3 values for side-by-side display.
var paperTable3 = map[string][3]float64{
	"race:black":      {0.738, 0.530, 0.789},
	"race:white":      {0.563, 0.508, 0.722},
	"gender:male":     {0.654, 0.532, 0.724},
	"gender:female":   {0.641, 0.505, 0.786},
	"age:child":       {0.651, 0.594, 0.725},
	"age:teen":        {0.614, 0.482, 0.756},
	"age:adult":       {0.651, 0.505, 0.705},
	"age:middle-aged": {0.664, 0.502, 0.782},
	"age:elderly":     {0.658, 0.524, 0.805},
}

// Table3 renders delivery breakdowns with the paper's values.
func Table3(rows []core.Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3 — delivery breakdown by implied identity (measured | paper)\n")
	fmt.Fprintf(&b, "%-18s %4s  %15s %15s %15s\n", "Implied identity", "Ads", "% Black", "% Female", "% Age 45+")
	for _, r := range rows {
		p := paperTable3[r.Group]
		fmt.Fprintf(&b, "%-18s %4d  %6.1f%% | %4.1f%% %6.1f%% | %4.1f%% %6.1f%% | %4.1f%%\n",
			r.Group, r.Ads,
			100*r.FracBlack, 100*p[0],
			100*r.FracFemale, 100*p[1],
			100*r.FracAge45, 100*p[2])
	}
	return b.String()
}

// paperCoef is one published regression coefficient with its stars.
type paperCoef struct {
	value float64
	stars string
}

// paperTable4 holds Table 4's published coefficients, indexed by variant
// (a, b, c), model (Black, Female, Age), and term.
var paperTable4 = map[string]map[string]map[string]paperCoef{
	"a": {
		"Black":  {"Intercept": {0.5697, "***"}, "Black": {0.1812, "***"}, "Female": {-0.0278, ""}, "Child": {0.0281, ""}, "Teen": {-0.0315, ""}, "Middle-aged": {0.0217, ""}, "Elderly": {0.0077, ""}},
		"Female": {"Intercept": {0.5030, "***"}, "Black": {0.0258, ""}, "Female": {-0.0258, ""}, "Child": {0.0924, "***"}, "Teen": {-0.0205, ""}, "Middle-aged": {-0.0020, ""}, "Elderly": {0.0235, ""}},
		"Age":    {"Intercept": {0.3286, "***"}, "Black": {0.0028, ""}, "Female": {0.0359, "**"}, "Child": {0.0328, ""}, "Teen": {0.0224, ""}, "Middle-aged": {0.0508, "**"}, "Elderly": {0.1180, "***"}},
	},
	"b": {
		"Black":  {"Intercept": {0.5520, "***"}, "Black": {0.2534, "***"}, "Female": {-0.0146, ""}, "Child": {0.0829, ""}, "Teen": {0.0094, ""}, "Middle-aged": {0.0259, ""}, "Elderly": {0.0511, ""}},
		"Female": {"Intercept": {0.4386, "***"}, "Black": {0.0185, ""}, "Female": {0.0780, "**"}, "Child": {0.1328, "***"}, "Teen": {-0.0301, ""}, "Middle-aged": {-0.0155, ""}, "Elderly": {-0.0274, ""}},
		"Age":    {"Intercept": {0.4433, "***"}, "Black": {0.0343, "**"}, "Female": {0.0362, "**"}, "Child": {-0.0888, "***"}, "Teen": {-0.0240, ""}, "Middle-aged": {0.0459, "*"}, "Elderly": {-0.0044, ""}},
	},
	"c": {
		"Black":  {"Intercept": {0.5480, "***"}, "Black": {0.2344, "***"}, "Female": {-0.0044, ""}, "Child": {0.0260, ""}, "Teen": {-0.0098, ""}, "Middle-aged": {0.0136, ""}, "Elderly": {0.0480, ""}},
		"Female": {"Intercept": {0.3714, "***"}, "Black": {0.0212, ""}, "Female": {0.1377, "***"}, "Child": {0.1643, "***"}, "Teen": {0.0362, ""}, "Middle-aged": {-0.0102, ""}, "Elderly": {0.0111, ""}},
		"Age":    {"Intercept": {0.4733, "***"}, "Black": {0.0169, ""}, "Female": {0.0134, ""}, "Child": {-0.0917, "***"}, "Teen": {-0.0644, "**"}, "Middle-aged": {-0.0076, ""}, "Elderly": {-0.0402, ""}},
	},
}

// paperTable4R2 holds the published R² rows.
var paperTable4R2 = map[string][3]float64{
	"a": {0.622, 0.262, 0.464},
	"b": {0.638, 0.314, 0.467},
	"c": {0.606, 0.496, 0.225},
}

// Table4 renders one Table 4 variant (a, b, or c) with the published
// coefficients alongside.
func Table4(t *core.Table4, variant string) string {
	ref, ok := paperTable4[variant]
	if !ok {
		ref = paperTable4["a"]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4%s — linear regression, measured | paper (stars: two-sided p)\n", variant)
	fmt.Fprintf(&b, "%-14s %22s %22s %22s\n", "term", "% Black", "% Female", t.Target.String())
	terms := []string{"Intercept", "Black", "Female", "Child", "Teen", "Middle-aged", "Elderly"}
	models := []*stats.OLSResult{t.Black, t.Female, t.Age}
	modelKeys := []string{"Black", "Female", "Age"}
	for _, term := range terms {
		fmt.Fprintf(&b, "%-14s", term)
		for mi, m := range models {
			var c, p float64
			if term == "Intercept" {
				c, p = m.Coef[0], m.PValue[0]
			} else {
				c, _ = m.Coefficient(term)
				p, _ = m.PValueOf(term)
			}
			pc := ref[modelKeys[mi]][term]
			fmt.Fprintf(&b, " %8.4f%-3s|%7.4f%-3s", c, stats.SignificanceStars(p), pc.value, pc.stars)
		}
		b.WriteString("\n")
	}
	r2 := paperTable4R2[variant]
	fmt.Fprintf(&b, "%-14s %8.3f   |%7.3f    %8.3f   |%7.3f    %8.3f   |%7.3f\n",
		"R²", models[0].R2, r2[0], models[1].R2, r2[1], models[2].R2, r2[2])
	fmt.Fprintf(&b, "FDR-surviving terms (Benjamini-Hochberg, q < 0.05): %s\n",
		strings.Join(t.FDRSignificant(0.05), ", "))
	return b.String()
}

// paperTable5 holds the published Table 5 coefficients (implied-identity
// term) per model.
var paperTable5 = map[string]paperCoef{
	"I":   {0.141, "***"},
	"II":  {0.070, "*"},
	"III": {0.105, "***"},
	"IV":  {0.023, ""},
	"V":   {-0.020, ""},
	"VI":  {0.002, ""},
}

// Table5 renders the mixed-effects table with the published values.
func Table5(t *core.Table5) string {
	var b strings.Builder
	b.WriteString("Table 5 — mixed-effects models (measured | paper)\n")
	type row struct {
		label string
		key   string
		m     *stats.MixedLMResult
		term  string
	}
	rows := []row{
		{"(I)   frac Black ~ implied Black | implied female ads", "I", t.RaceImpliedFemale, "Implied: Black"},
		{"(II)  frac Black ~ implied Black | implied male ads", "II", t.RaceImpliedMale, "Implied: Black"},
		{"(III) frac Black ~ implied Black | all ads", "III", t.RaceOverall, "Implied: Black"},
		{"(IV)  frac female ~ implied female | implied Black ads", "IV", t.GenderImpliedBlack, "Implied: female"},
		{"(V)   frac female ~ implied female | implied white ads", "V", t.GenderImpliedWhite, "Implied: female"},
		{"(VI)  frac female ~ implied female | all ads", "VI", t.GenderOverall, "Implied: female"},
	}
	fmt.Fprintf(&b, "%-55s %10s %10s %12s %10s\n", "model", "coef", "paper", "adj.R²", "paper adjR²")
	paperAdj := map[string]float64{"I": 0.446, "II": 0.117, "III": 0.288, "IV": -0.035, "V": -0.042, "VI": -0.024}
	for _, r := range rows {
		c, _ := r.m.Coefficient(r.term)
		p, _ := r.m.PValueOf(r.term)
		ref := paperTable5[r.key]
		fmt.Fprintf(&b, "%-55s %7.3f%-3s %7.3f%-3s %12.3f %10.3f\n",
			r.label, c, stats.SignificanceStars(p), ref.value, ref.stars, r.m.AdjR2, paperAdj[r.key])
	}
	return b.String()
}

// TableA1 renders the poverty-controlled regression with the published
// values.
func TableA1(res *stats.OLSResult) string {
	paper := map[string]paperCoef{
		"Intercept": {0.6171, "***"}, "Black": {0.0849, "**"}, "Female": {0.0186, ""},
		"Teen": {0.0111, ""}, "Middle-aged": {0.0388, ""}, "Elderly": {0.0066, ""},
	}
	var b strings.Builder
	b.WriteString("Table A1 — poverty-controlled regression on % Black (measured | paper)\n")
	for i, n := range res.Names {
		ref := paper[n]
		fmt.Fprintf(&b, "%-14s %8.4f%-3s | %7.4f%-3s\n",
			n, res.Coef[i], stats.SignificanceStars(res.PValue[i]), ref.value, ref.stars)
	}
	fmt.Fprintf(&b, "%-14s %8.3f    | %7.3f\n", "R²", res.R2, 0.392)
	return b.String()
}
