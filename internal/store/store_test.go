package store

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// One small deterministic world shared by every test; platforms are rebuilt
// per test from it (they carry the mutable account).
var (
	worldOnce sync.Once
	worldPop  *population.Population
	worldBhv  *population.Behavior
	worldFL   *voter.Registry
)

func world(t testing.TB) {
	t.Helper()
	worldOnce.Do(func() {
		flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 701)
		flCfg.NumVoters = 5000
		fl, err := voter.Generate(flCfg)
		if err != nil {
			panic(err)
		}
		pop, err := population.Build(population.Config{Seed: 702}, fl)
		if err != nil {
			panic(err)
		}
		behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
		if err != nil {
			panic(err)
		}
		worldPop, worldBhv, worldFL = pop, behave, fl
	})
}

func newPlatform(t testing.TB) *platform.Platform {
	t.Helper()
	world(t)
	cfg := platform.DefaultConfig(703)
	cfg.Training.LogRows = 2000
	cfg.ReviewRejectProb = 0
	p, err := platform.New(cfg, worldPop, worldBhv)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// piiHashes returns upload hashes for the first n registry records.
func piiHashes(t testing.TB, n int) []string {
	t.Helper()
	world(t)
	recs := worldFL.Records
	if n > len(recs) {
		n = len(recs)
	}
	hashes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r := &recs[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	return hashes
}

// testOptions returns fast store options for tests: tight flush window, no
// fsync (tests simulate process crashes, not power loss), snapshots manual
// unless overridden.
func testOptions(dir string) Options {
	return Options{Dir: dir, Fsync: FsyncNone, FlushInterval: 200 * time.Microsecond}
}

// openRecover opens a store over dir and recovers into a fresh platform.
func openRecover(t *testing.T, opts Options) (*Store, *platform.Platform, *RecoveryInfo) {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlatform(t)
	info, err := st.Recover(p)
	if err != nil {
		t.Fatal(err)
	}
	return st, p, info
}

// drive pushes one of each durable mutation through the platform: an
// audience, a campaign, two ads, and a delivered day (5 WAL records).
func drive(t *testing.T, p *platform.Platform, tag string) {
	t.Helper()
	ca, err := p.CreateCustomAudience("aud-"+tag, piiHashes(t, 400))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := p.CreateCampaign("cmp-"+tag, platform.ObjectiveTraffic, platform.SpecialNone, 2019)
	if err != nil {
		t.Fatal(err)
	}
	targeting := platform.Targeting{CustomAudienceIDs: []string{ca.ID}}
	var ads []string
	for i := 0; i < 2; i++ {
		ad, err := p.CreateAd(cmp.ID, platform.Creative{Headline: "h"}, targeting, 200)
		if err != nil {
			t.Fatal(err)
		}
		ads = append(ads, ad.ID)
	}
	if err := p.RunDay(ads, 42); err != nil {
		t.Fatal(err)
	}
}

func barrier(t *testing.T, st *Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := st.Barrier(ctx); err != nil {
		t.Fatalf("barrier: %v", err)
	}
}

func stateJSON(t *testing.T, p *platform.Platform) string {
	t.Helper()
	b, err := json.Marshal(p.State())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// tailSegment returns the path of the newest WAL segment.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	l, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.segments) == 0 {
		t.Fatal("no WAL segments")
	}
	return filepath.Join(dir, walName(l.segments[len(l.segments)-1]))
}

func TestEmptyDirColdStart(t *testing.T) {
	st, _, info := openRecover(t, testOptions(t.TempDir()))
	if info.SnapshotPath != "" || info.Replayed != 0 || info.TruncatedAt != "" {
		t.Fatalf("cold start recovered something: %+v", info)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWithoutRecover(t *testing.T) {
	st, err := Open(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripThroughSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, p, _ := openRecover(t, testOptions(dir))
	drive(t, p, "a")
	barrier(t, st)
	rp, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rp.SnapshotSeq == 0 || rp.TailRecords != 0 {
		t.Fatalf("graceful close: recovery point %+v, want final snapshot covering all records", rp)
	}
	want := stateJSON(t, p)

	st2, p2, info := openRecover(t, testOptions(dir))
	defer st2.Close()
	if info.SnapshotPath == "" {
		t.Fatalf("restart after graceful close: no snapshot used: %+v", info)
	}
	if got := stateJSON(t, p2); got != want {
		t.Fatalf("state diverged across restart:\n got %.200s…\nwant %.200s…", got, want)
	}
}

func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	st, p, _ := openRecover(t, testOptions(dir))
	drive(t, p, "a")
	barrier(t, st)
	want := stateJSON(t, p)
	st.Kill() // crash: no final snapshot

	st2, p2, info := openRecover(t, testOptions(dir))
	defer st2.Close()
	if info.SnapshotPath != "" || info.Replayed != 5 {
		t.Fatalf("WAL-only recovery: %+v, want 5 replayed events and no snapshot", info)
	}
	if got := stateJSON(t, p2); got != want {
		t.Fatalf("state diverged across crash recovery")
	}
}

func TestBarrieredWritesSurviveKill(t *testing.T) {
	// Kill drops whatever the group-commit flusher had not flushed; a
	// mutation the barrier acked must never be in that set.
	dir := t.TempDir()
	st, p, _ := openRecover(t, testOptions(dir))
	if _, err := p.CreateCustomAudience("acked", piiHashes(t, 50)); err != nil {
		t.Fatal(err)
	}
	barrier(t, st)
	st.Kill()
	if err := st.Barrier(context.Background()); !errors.Is(err, ErrKilled) {
		t.Fatalf("barrier after kill: %v, want ErrKilled", err)
	}

	_, p2, _ := openRecover(t, testOptions(dir))
	if _, err := p2.Audience("ca-1"); err != nil {
		t.Fatalf("acked audience lost in crash: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, p, _ := openRecover(t, testOptions(dir))
	drive(t, p, "a")
	barrier(t, st)
	want := stateJSON(t, p)
	st.Kill()

	// Simulate a crash mid-append: a frame header promising more payload
	// than the file holds.
	seg := tailSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, p2, info := openRecover(t, testOptions(dir))
	if info.TruncatedAt == "" || info.TruncatedBytes != 10 {
		t.Fatalf("torn tail not truncated: %+v", info)
	}
	if !strings.Contains(info.TruncatedAt, "torn") {
		t.Fatalf("truncation reason %q, want torn", info.TruncatedAt)
	}
	if got := stateJSON(t, p2); got != want {
		t.Fatalf("state diverged after torn-tail truncation")
	}
	// The truncated store keeps working: new mutations append and survive
	// the next restart.
	if _, err := p2.CreateCampaign("after-truncation", platform.ObjectiveTraffic, platform.SpecialNone, 2019); err != nil {
		t.Fatal(err)
	}
	barrier(t, st2)
	if _, err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, p3, _ := openRecover(t, testOptions(dir))
	defer st3.Close()
	found := false
	for _, name := range p3.Inventory().CampaignNames {
		if name == "after-truncation" {
			found = true
		}
	}
	if !found {
		t.Fatal("post-truncation mutation lost on restart")
	}
}

func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	dir := t.TempDir()
	st, p, _ := openRecover(t, testOptions(dir))
	drive(t, p, "a")
	barrier(t, st)
	st.Kill()

	// Flip one byte inside the final record's payload (the delivered day).
	seg := tailSegment(t, dir)
	events, _, stop, err := readSegment(seg)
	if err != nil || stop != nil || len(events) != 5 {
		t.Fatalf("pre-corruption segment: %d events, stop=%v, err=%v", len(events), stop, err)
	}
	last := events[len(events)-1]
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, last.offset+frameHeaderSize+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, p2, info := openRecover(t, testOptions(dir))
	defer st2.Close()
	if info.Replayed != 4 || !strings.Contains(info.TruncatedAt, "corrupt") {
		t.Fatalf("bit flip: %+v, want 4 replayed and corrupt truncation", info)
	}
	// Everything before the corrupt record survives; the day it carried is
	// gone (it was never acked durable in this scenario).
	inv := p2.Inventory()
	if inv.Audiences != 1 || inv.Campaigns != 1 || inv.Ads != 2 {
		t.Fatalf("pre-corruption objects lost: %+v", inv)
	}
	ad, err := p2.Ad("ad-2")
	if err != nil {
		t.Fatal(err)
	}
	if ad.Status != platform.StatusActive {
		t.Fatalf("ad status %v after losing the delivery record, want ACTIVE", ad.Status)
	}
}

func TestStaleSnapshotPlusNewerWAL(t *testing.T) {
	dir := t.TempDir()
	st, p, _ := openRecover(t, testOptions(dir))
	drive(t, p, "a")
	barrier(t, st)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot live only in the WAL tail.
	if _, err := p.CreateCampaign("tail-only", platform.ObjectiveTraffic, platform.SpecialNone, 2019); err != nil {
		t.Fatal(err)
	}
	barrier(t, st)
	want := stateJSON(t, p)
	st.Kill()

	st2, p2, info := openRecover(t, testOptions(dir))
	defer st2.Close()
	if info.SnapshotPath == "" || info.Replayed == 0 {
		t.Fatalf("stale snapshot + newer WAL: %+v, want both used", info)
	}
	if got := stateJSON(t, p2); got != want {
		t.Fatalf("tail mutation lost: snapshot shadowed the newer WAL")
	}
}

func TestSnapshotCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SnapshotEvery = 4
	st, p, _ := openRecover(t, opts)
	for i := 0; i < 3; i++ {
		if _, err := p.CreateCustomAudience("a", piiHashes(t, 20+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.CreateCampaign("c", platform.ObjectiveTraffic, platform.SpecialNone, 2019); err != nil {
			t.Fatal(err)
		}
		barrier(t, st)
		// Give the flusher a chance to run its snapshot check.
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.snapshots) > 2 {
		t.Fatalf("%d snapshots retained, want at most 2", len(l.snapshots))
	}
	if len(l.segments) > 2 {
		t.Fatalf("%d WAL segments retained after compaction", len(l.segments))
	}
	want := stateJSON(t, p)
	st2, p2, _ := openRecover(t, opts)
	defer st2.Close()
	if got := stateJSON(t, p2); got != want {
		t.Fatalf("state diverged after compaction")
	}
}

func TestRecoverRefusesForeignWorldSnapshot(t *testing.T) {
	dir := t.TempDir()
	p := newPlatform(t)
	if _, err := writeSnapshot(dir, &snapshotFile{
		Version:    snapshotVersion,
		Seq:        3,
		WorldUsers: p.NumUsers() + 1,
		State:      &platform.State{Version: platform.StateVersion},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recover(p); err == nil || !strings.Contains(err.Error(), "world") {
		t.Fatalf("foreign-world snapshot: err=%v, want world mismatch", err)
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, good := range []string{"always", "interval", "none", ""} {
		if _, err := ParseFsyncMode(good); err != nil {
			t.Errorf("ParseFsyncMode(%q): %v", good, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Error("ParseFsyncMode(sometimes): want error")
	}
}

func TestFsyncAlwaysCountsSyncs(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.Fsync = FsyncAlways
	st, p, _ := openRecover(t, opts)
	if _, err := p.CreateCustomAudience("synced", piiHashes(t, 10)); err != nil {
		t.Fatal(err)
	}
	barrier(t, st)
	if got := st.reg.Counter(MetricFsyncs).Value(); got == 0 {
		t.Fatal("fsync=always acked a write without syncing")
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
