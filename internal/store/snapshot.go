package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/adaudit/impliedidentity/internal/platform"
)

// snapshotVersion tags the snapshot envelope. The platform state inside
// carries its own version (platform.StateVersion); this one covers the
// envelope fields.
const snapshotVersion = 1

// snapshotFile is the snapshot payload: the full platform state plus the WAL
// position it covers and a cheap world fingerprint.
type snapshotFile struct {
	Version int `json:"version"`
	// Seq is a sequence number at or before the captured state: every event
	// with Seq' <= Seq is reflected in State. Events after it must be
	// replayed; replaying events the state already reflects is harmless
	// because mutations are idempotent (see platform/state.go).
	Seq uint64 `json:"seq"`
	// WorldUsers fingerprints the deterministic world the indexes in State
	// refer to. Recovery refuses a snapshot taken against a different world.
	WorldUsers int             `json:"world_users"`
	State      *platform.State `json:"state"`
}

// writeSnapshot durably writes a snapshot file: temp file, framed payload,
// fsync, rename, directory fsync. A crash anywhere leaves either the old
// snapshot set or the complete new file — never a half-visible one.
func writeSnapshot(dir string, snap *snapshotFile) (string, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("store: encoding snapshot: %w", err)
	}
	final := filepath.Join(dir, snapName(snap.Seq))
	tmp := final + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeFrame(w, payload); err == nil {
		err = w.Flush()
	} else {
		//adlint:allow walerr (error path: the write error is already latched; this flush is a courtesy drain)
		_ = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	return final, nil
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (*snapshotFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := readFrame(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("store: snapshot %s is empty", path)
		}
		return nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: undecodable: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot %s: version %d, this build reads %d", path, snap.Version, snapshotVersion)
	}
	if snap.State == nil {
		return nil, fmt.Errorf("store: snapshot %s: missing state", path)
	}
	return &snap, nil
}
