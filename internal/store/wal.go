package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/adaudit/impliedidentity/internal/platform"
)

// On-disk record framing, shared by WAL segments and snapshot files:
//
//	| uint32 payload length | uint32 CRC32(payload) | payload bytes |
//
// both integers little-endian, CRC32 over the IEEE polynomial. The frame is
// deliberately minimal: length bounds the read, the checksum catches bit
// rot, and a short read anywhere inside a frame is a torn tail. Versioning
// lives inside the payloads (walRecord / snapshotFile carry explicit version
// fields), so the frame layout itself never needs to change for a schema
// bump.

// frameHeaderSize is the fixed prefix of every record.
const frameHeaderSize = 8

// maxRecordBytes caps one record's payload. Nothing legitimate approaches
// it; a length beyond it is read as corruption, not as an allocation demand.
const maxRecordBytes = 64 << 20

// Frame-read failure classes. Both mean "stop replaying here"; they are
// distinguished so recovery can report what it found.
var (
	// errTornRecord is a frame cut short by a crash mid-write.
	errTornRecord = errors.New("store: torn record (short frame)")
	// errCorruptRecord is a complete frame whose content fails validation.
	errCorruptRecord = errors.New("store: corrupt record")
)

// writeFrame appends one framed payload to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed payload. io.EOF exactly at a frame boundary is
// a clean end; a partial header or partial payload is errTornRecord; a bad
// length or checksum mismatch is errCorruptRecord.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordBytes {
		return nil, fmt.Errorf("%w: length %d exceeds %d", errCorruptRecord, n, maxRecordBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornRecord
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorruptRecord)
	}
	return payload, nil
}

// walRecordVersion tags the WAL payload schema. Bump it when Mutation's
// layout changes incompatibly; replay rejects versions it does not know.
const walRecordVersion = 1

// walRecord is one WAL entry: a monotonically increasing sequence number
// wrapping one platform mutation.
type walRecord struct {
	Version int               `json:"v"`
	Seq     uint64            `json:"seq"`
	Mut     platform.Mutation `json:"mut"`
}

// File-name layout inside the store directory.
const (
	walPrefix  = "wal-"
	walSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

// walName returns the segment file name for a starting sequence number. The
// zero-padded hex key makes lexical order equal numeric order.
func walName(startSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", walPrefix, startSeq, walSuffix)
}

// snapName returns the snapshot file name for the sequence it covers.
func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

// parseSeqName extracts the hex sequence from a "<prefix><hex16><suffix>"
// file name, reporting ok=false for anything else.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// dirListing is the classified content of a store directory.
type dirListing struct {
	segments  []uint64 // WAL segment start sequences, ascending
	snapshots []uint64 // snapshot cover sequences, ascending
}

// scanDir classifies the store directory, deleting leftover temp files from
// an interrupted snapshot write (they were never durable).
func scanDir(dir string) (*dirListing, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l := &dirListing{}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeqName(name, walPrefix, walSuffix); ok {
			l.segments = append(l.segments, seq)
			continue
		}
		if seq, ok := parseSeqName(name, snapPrefix, snapSuffix); ok {
			l.snapshots = append(l.snapshots, seq)
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i] < l.segments[j] })
	sort.Slice(l.snapshots, func(i, j int) bool { return l.snapshots[i] < l.snapshots[j] })
	return l, nil
}

// segmentEvent is one decoded WAL record plus where its frame started, so a
// truncation can cut exactly before it.
type segmentEvent struct {
	rec    walRecord
	offset int64
}

// readSegment decodes a WAL segment. It returns the events that parsed
// cleanly, the offset just past the last good frame, and the reason reading
// stopped: nil at a clean EOF, or the torn/corrupt error. A stop reason is
// not a failure of the read — recovery truncates there.
func readSegment(path string) (events []segmentEvent, goodEnd int64, stop error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	for {
		payload, ferr := readFrame(r)
		if ferr == io.EOF {
			return events, offset, nil, nil
		}
		if ferr != nil {
			return events, offset, ferr, nil
		}
		var rec walRecord
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return events, offset, fmt.Errorf("%w: undecodable payload: %v", errCorruptRecord, jerr), nil
		}
		if rec.Version != walRecordVersion {
			return events, offset, fmt.Errorf("%w: record version %d, this build reads %d",
				errCorruptRecord, rec.Version, walRecordVersion), nil
		}
		events = append(events, segmentEvent{rec: rec, offset: offset})
		offset += frameHeaderSize + int64(len(payload))
	}
}

// syncDir fsyncs a directory so a rename inside it is durable. Best effort:
// some filesystems reject directory fsync, and losing the rename just means
// recovering from the previous snapshot.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		//adlint:allow walerr (best-effort by contract: some filesystems reject directory fsync)
		_ = d.Sync()
		_ = d.Close()
	}
}
