// Package store is the platform's durability subsystem: an event-sourced
// write-ahead log of account mutations plus periodic snapshots of full
// platform state, so a multi-day audit survives server restarts (the paper's
// measurement window spans weeks of delivery days; re-polling insights only
// makes sense against a platform whose state outlives a crash).
//
// Design in one paragraph: the platform emits every committed mutation
// through its hook (see platform/state.go); the store frames each one as a
// length+CRC32 JSON record and appends it to the active WAL segment through
// a group-commit pipeline — appends buffer under the lock, a background
// flusher flushes (and fsyncs, per the configured mode) the whole batch at
// the flush interval, and Barrier lets the HTTP server wait for durability
// before acking, so one fsync covers every concurrent request in the window.
// Every SnapshotEvery records the store writes a full-state snapshot and
// rotates the WAL, deleting segments the snapshot covers. Recovery loads the
// newest valid snapshot, then replays the WAL tail in sequence order,
// truncating at the first torn or corrupt record instead of failing: a crash
// mid-write costs at most the unacked tail, never the acked prefix.
package store

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
)

// FsyncMode selects when appended records are forced to stable storage.
type FsyncMode string

// Fsync modes.
const (
	// FsyncAlways syncs once per group commit: an acked record survives
	// machine power loss. The default.
	FsyncAlways FsyncMode = "always"
	// FsyncInterval syncs at most once per SyncEvery: an acked record
	// survives process crash always, machine crash up to SyncEvery behind.
	FsyncInterval FsyncMode = "interval"
	// FsyncNone never syncs explicitly: durability is whatever the OS page
	// cache provides. For benchmarks and tests.
	FsyncNone FsyncMode = "none"
)

// ParseFsyncMode converts a flag value.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case FsyncAlways, FsyncInterval, FsyncNone:
		return FsyncMode(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("store: unknown fsync mode %q (want always, interval, or none)", s)
}

// Store metric names, registered into the Options.Metrics registry.
const (
	MetricRecordsAppended = "store.records_appended"
	MetricBytesAppended   = "store.bytes_appended"
	MetricFsyncs          = "store.fsyncs"
	MetricGroupCommits    = "store.group_commits"
	MetricSnapshots       = "store.snapshots"
	// MetricSnapshotFailures counts background snapshot attempts that
	// returned an error. The flusher retries on the next threshold
	// crossing, but a silently failing snapshot means recovery time grows
	// unbounded — this counter is the alarm for that condition.
	MetricSnapshotFailures = "store.snapshot_failures"
	// GaugeGroupCommitBatch is the size of the most recent group commit:
	// together with the two counters above it tells whether the flush
	// interval is actually batching concurrent writers.
	GaugeGroupCommitBatch = "store.group_commit_batch"
	// GaugeRecoveryMs is how long the last Recover took, in milliseconds.
	GaugeRecoveryMs = "store.recovery_duration_ms"
	// GaugeRecoveredEvents is how many WAL events the last Recover replayed.
	GaugeRecoveredEvents = "store.recovered_events"
	// MetricTruncatedBytes counts WAL bytes dropped by recovery truncation.
	MetricTruncatedBytes = "store.recovery_truncated_bytes"
)

// ErrKilled is the sticky error after Kill: the store simulated a crash and
// accepts nothing further.
var ErrKilled = errors.New("store: killed (simulated crash)")

// Options configures a store.
type Options struct {
	// Dir is the store directory (created if missing).
	Dir string
	// Fsync is the sync discipline; default FsyncAlways.
	Fsync FsyncMode
	// FlushInterval is the group-commit window: how long the flusher lets a
	// batch accumulate before flushing it. Default 1ms.
	FlushInterval time.Duration
	// SyncEvery bounds the fsync staleness in FsyncInterval mode.
	// Default 100ms.
	SyncEvery time.Duration
	// SnapshotEvery writes a snapshot (and compacts the WAL) after this many
	// appended records. 0 disables automatic snapshots; Close still writes a
	// final one.
	SnapshotEvery int
	// Metrics receives the store.* counters; nil uses a private registry.
	Metrics *obs.Registry
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = time.Millisecond
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// batch is one group commit in progress: appends join it, the flusher
// settles it, waiters block on done and read err afterwards.
type batch struct {
	done chan struct{}
	err  error
	n    int
}

// Store is the durable state store. Open it, Recover into a freshly built
// platform (this also arms the mutation hook and starts the flusher), hand
// it to the HTTP server as its persistence barrier, and Close on shutdown.
type Store struct {
	opts Options
	reg  *obs.Registry

	mu        sync.Mutex
	f         *os.File      // active WAL segment
	buf       *bufio.Writer // append buffer over f
	segStart  uint64        // first sequence the active segment may hold
	seq       uint64        // last assigned sequence number
	snapSeq   uint64        // sequence the latest snapshot covers
	sinceSnap int           // records appended since the latest snapshot
	cur       *batch        // open batch accumulating appends
	lastBatch *batch        // batch containing the most recent append
	sticky    error         // first unrecoverable append/flush error
	lastSync  time.Time
	closed    bool
	recovered bool

	p *platform.Platform

	kick     chan struct{}
	stop     chan struct{}
	flusherC chan struct{} // closed when the flusher exits
	stopOnce sync.Once
}

// Open prepares a store over a directory. No file is touched beyond creating
// the directory; call Recover to load state and begin accepting appends.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if _, err := ParseFsyncMode(string(opts.Fsync)); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{
		opts:     opts,
		reg:      opts.Metrics,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		flusherC: make(chan struct{}),
	}, nil
}

// RecoveryInfo describes what Recover found and did.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence of the snapshot recovery started from
	// (0 when none was usable).
	SnapshotSeq uint64
	// SnapshotPath is the snapshot file used, "" when none.
	SnapshotPath string
	// Replayed is how many WAL events were applied on top of the snapshot.
	Replayed int
	// Skipped is how many WAL events were already covered by the snapshot.
	Skipped int
	// TruncatedBytes is how many trailing WAL bytes were cut as torn or
	// corrupt; TruncatedAt names where, "" when the log was clean.
	TruncatedBytes int64
	TruncatedAt    string
	// LastSeq is the store's sequence position after recovery.
	LastSeq uint64
	// Duration is recovery wall time.
	Duration time.Duration
}

// String renders the one-line boot log.
func (ri *RecoveryInfo) String() string {
	snap := "no snapshot"
	if ri.SnapshotPath != "" {
		snap = fmt.Sprintf("snapshot seq=%d (%s)", ri.SnapshotSeq, filepath.Base(ri.SnapshotPath))
	}
	trunc := ""
	if ri.TruncatedAt != "" {
		trunc = fmt.Sprintf(", truncated %d bytes at %s", ri.TruncatedBytes, ri.TruncatedAt)
	}
	return fmt.Sprintf("recovered from %s + %d WAL events (%d already covered)%s in %v; next seq %d",
		snap, ri.Replayed, ri.Skipped, trunc, ri.Duration.Round(time.Millisecond), ri.LastSeq+1)
}

// Recover restores the durable account into p (which must be freshly built
// from the same world seed the store's history was recorded against), arms
// p's mutation hook so subsequent mutations append to the WAL, and starts
// the group-commit flusher. It must be called exactly once, before traffic.
func (s *Store) Recover(p *platform.Platform) (*RecoveryInfo, error) {
	if p == nil {
		return nil, fmt.Errorf("store: nil platform")
	}
	s.mu.Lock()
	if s.recovered || s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: Recover called twice or after Close")
	}
	s.mu.Unlock()

	start := time.Now()
	info := &RecoveryInfo{}
	listing, err := scanDir(s.opts.Dir)
	if err != nil {
		return nil, err
	}

	// Newest usable snapshot wins; an unreadable one falls back to the next,
	// and with none the fresh platform is the starting state.
	for i := len(listing.snapshots) - 1; i >= 0; i-- {
		path := filepath.Join(s.opts.Dir, snapName(listing.snapshots[i]))
		snap, serr := readSnapshot(path)
		if serr != nil {
			continue
		}
		if snap.WorldUsers != p.NumUsers() {
			return nil, fmt.Errorf("store: snapshot %s was taken against a %d-user world, this platform has %d (world seed mismatch)",
				path, snap.WorldUsers, p.NumUsers())
		}
		if rerr := p.Restore(snap.State); rerr != nil {
			return nil, fmt.Errorf("store: restoring %s: %w", path, rerr)
		}
		info.SnapshotSeq = snap.Seq
		info.SnapshotPath = path
		break
	}

	// Replay the WAL tail in segment order. The first torn or corrupt record
	// ends the usable log: the segment is truncated there and any later
	// segments (unreachable past the break) are removed.
	lastSeq := info.SnapshotSeq
	var prevSeq uint64
	broken := false
	for _, segStart := range listing.segments {
		path := filepath.Join(s.opts.Dir, walName(segStart))
		if broken {
			_ = os.Remove(path)
			continue
		}
		events, goodEnd, stop, rerr := readSegment(path)
		if rerr != nil {
			return nil, rerr
		}
		for _, ev := range events {
			if prevSeq != 0 && ev.rec.Seq != prevSeq+1 {
				// A gap in the chain means a record vanished; nothing after
				// it is trusted.
				stop = fmt.Errorf("%w: sequence %d follows %d", errCorruptRecord, ev.rec.Seq, prevSeq)
				goodEnd = ev.offset
				break
			}
			prevSeq = ev.rec.Seq
			if ev.rec.Seq <= info.SnapshotSeq {
				info.Skipped++
				continue
			}
			if aerr := p.ApplyMutation(&ev.rec.Mut); aerr != nil {
				return nil, fmt.Errorf("store: replaying %s seq %d: %w", filepath.Base(path), ev.rec.Seq, aerr)
			}
			info.Replayed++
			if ev.rec.Seq > lastSeq {
				lastSeq = ev.rec.Seq
			}
		}
		if stop != nil {
			fi, _ := os.Stat(path)
			if fi != nil {
				info.TruncatedBytes += fi.Size() - goodEnd
			}
			info.TruncatedAt = fmt.Sprintf("%s offset %d (%v)", filepath.Base(path), goodEnd, stop)
			if terr := os.Truncate(path, goodEnd); terr != nil {
				return nil, fmt.Errorf("store: truncating %s: %w", path, terr)
			}
			broken = true
		}
	}
	if info.TruncatedBytes > 0 {
		s.reg.Counter(MetricTruncatedBytes).Add(info.TruncatedBytes)
	}

	// Resume appending: reuse the newest surviving segment, or start a fresh
	// one when the directory has none.
	s.mu.Lock()
	s.seq = lastSeq
	s.snapSeq = info.SnapshotSeq
	// The newest surviving segment (post-truncation) is append-ready;
	// segments past a break were removed above.
	var f *os.File
	for i := len(listing.segments) - 1; i >= 0; i-- {
		path := filepath.Join(s.opts.Dir, walName(listing.segments[i]))
		//adlint:allow lockhold (recovery runs before the store is shared; the lock is uncontended)
		if _, statErr := os.Stat(path); statErr == nil {
			f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) //adlint:allow lockhold (see above)
			s.segStart = listing.segments[i]
			break
		}
	}
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if f == nil {
		s.segStart = lastSeq + 1
		f, err = os.OpenFile(filepath.Join(s.opts.Dir, walName(s.segStart)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	s.f = f
	s.buf = bufio.NewWriterSize(f, 1<<20)
	s.p = p
	s.recovered = true
	s.lastSync = time.Now()
	s.mu.Unlock()

	info.LastSeq = lastSeq
	info.Duration = time.Since(start)
	s.reg.Gauge(GaugeRecoveryMs).Set(info.Duration.Milliseconds())
	s.reg.Gauge(GaugeRecoveredEvents).Set(int64(info.Replayed))

	p.SetMutationHook(s.onMutation)
	go s.flusher()
	return info, nil
}

// onMutation is the platform hook: frame and buffer the record, join the
// open batch, and wake the flusher. It runs under the platform's write lock,
// so it must not block on I/O completion — durability waiting is Barrier's
// job.
func (s *Store) onMutation(m platform.Mutation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sticky != nil || s.closed {
		return
	}
	s.seq++
	payload, err := json.Marshal(walRecord{Version: walRecordVersion, Seq: s.seq, Mut: m})
	if err == nil {
		err = writeFrame(s.buf, payload)
	}
	if err != nil {
		s.sticky = fmt.Errorf("store: appending seq %d: %w", s.seq, err)
		s.failPendingLocked()
		return
	}
	if s.cur == nil {
		s.cur = &batch{done: make(chan struct{})}
	}
	s.cur.n++
	s.lastBatch = s.cur
	s.sinceSnap++
	s.reg.Counter(MetricRecordsAppended).Inc()
	s.reg.Counter(MetricBytesAppended).Add(int64(frameHeaderSize + len(payload)))
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Barrier blocks until every mutation appended so far is flushed (and, per
// the fsync mode, synced). The HTTP server calls it between applying a
// mutation and acking the response: persist-before-respond.
func (s *Store) Barrier(ctx context.Context) error {
	s.mu.Lock()
	if s.sticky != nil {
		err := s.sticky
		s.mu.Unlock()
		return err
	}
	b := s.lastBatch
	s.mu.Unlock()
	if b == nil {
		return nil
	}
	select {
	case <-b.done:
		return b.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flusher is the group-commit loop: each kick opens a commit window of
// FlushInterval, then the whole accumulated batch is flushed in one write
// and (per mode) one fsync.
func (s *Store) flusher() {
	defer close(s.flusherC)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		if s.opts.FlushInterval > 0 {
			timer.Reset(s.opts.FlushInterval)
			select {
			case <-timer.C:
			case <-s.stop:
				// A crash-style stop (Kill) must not flush; a graceful Close
				// runs its own final flush after the flusher exits.
				return
			}
		}
		s.flushBatch(false)
		s.maybeSnapshot()
	}
}

// flushBatch settles the open batch: flush the buffer, sync per policy, and
// release the waiters. force syncs regardless of mode (graceful shutdown).
func (s *Store) flushBatch(force bool) {
	s.mu.Lock()
	b := s.cur
	s.cur = nil
	if b == nil {
		s.mu.Unlock()
		return
	}
	err := s.sticky
	if err == nil {
		err = s.buf.Flush()
	}
	if err == nil {
		sync := force
		switch s.opts.Fsync {
		case FsyncAlways:
			sync = true
		case FsyncInterval:
			sync = sync || time.Since(s.lastSync) >= s.opts.SyncEvery
		}
		if sync {
			err = s.f.Sync()
			s.lastSync = time.Now()
			s.reg.Counter(MetricFsyncs).Inc()
		}
	}
	if err != nil && s.sticky == nil {
		s.sticky = fmt.Errorf("store: group commit: %w", err)
	}
	s.reg.Counter(MetricGroupCommits).Inc()
	s.reg.Gauge(GaugeGroupCommitBatch).Set(int64(b.n))
	s.mu.Unlock()
	b.err = err
	close(b.done)
}

// failPendingLocked releases batch waiters with the sticky error; the caller
// holds s.mu.
func (s *Store) failPendingLocked() {
	if s.cur != nil {
		s.cur.err = s.sticky
		close(s.cur.done)
		s.cur = nil
	}
}

// maybeSnapshot writes a snapshot when enough records accumulated since the
// last one. It runs on the flusher goroutine: commits pause for the
// snapshot's duration, which bounds memory and keeps the locking trivial.
func (s *Store) maybeSnapshot() {
	s.mu.Lock()
	need := s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery && s.sticky == nil && !s.closed
	s.mu.Unlock()
	if need {
		if err := s.Snapshot(); err != nil {
			// The WAL keeps growing and the next threshold crossing will
			// retry; surface the failure instead of discarding it so
			// operators see recovery debt accumulating.
			s.reg.Counter(MetricSnapshotFailures).Inc()
		}
	}
}

// Snapshot captures full platform state, writes it durably, and compacts the
// WAL: a fresh segment starts and segments entirely covered by the snapshot
// are deleted. Safe to call while serving; concurrent mutations land in the
// WAL tail the snapshot's Seq tells recovery to replay.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	if !s.recovered || s.closed || s.sticky != nil {
		err := s.sticky
		s.mu.Unlock()
		return err
	}
	// Capture the sequence BEFORE reading state: mutations landing between
	// the two are included in the state but also stay in the replayed tail,
	// which idempotent application makes harmless. The reverse order would
	// silently skip them.
	seq := s.seq
	s.mu.Unlock()

	state := s.p.State()
	_, err := writeSnapshot(s.opts.Dir, &snapshotFile{
		Version:    snapshotVersion,
		Seq:        seq,
		WorldUsers: s.p.NumUsers(),
		State:      state,
	})
	if err != nil {
		return err
	}
	s.reg.Counter(MetricSnapshots).Inc()
	return s.compact(seq)
}

// compact rotates to a fresh WAL segment and deletes files the snapshot at
// snapSeq makes redundant: segments whose every record is <= snapSeq, and
// all but the two newest snapshots (the older survivor is the fallback when
// the newest turns out unreadable).
func (s *Store) compact(snapSeq uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.buf.Flush()
	if err == nil && s.opts.Fsync != FsyncNone {
		err = s.f.Sync()
	}
	// Rotate only when the active segment holds records; an empty segment
	// (seq < segStart) is already the fresh one.
	if err == nil && s.seq >= s.segStart {
		nextStart := s.seq + 1
		var nf *os.File
		nf, err = os.OpenFile(filepath.Join(s.opts.Dir, walName(nextStart)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_ = s.f.Close()
			s.f = nf
			s.buf = bufio.NewWriterSize(nf, 1<<20)
			s.segStart = nextStart
		}
	}
	if err != nil {
		if s.sticky == nil {
			s.sticky = fmt.Errorf("store: rotating WAL: %w", err)
			s.failPendingLocked()
		}
		s.mu.Unlock()
		return err
	}
	s.snapSeq = snapSeq
	s.sinceSnap = 0
	s.mu.Unlock()

	listing, err := scanDir(s.opts.Dir)
	if err != nil {
		return err
	}
	// A segment's records all precede the next segment's start; it is
	// redundant when that bound is <= snapSeq+1.
	for i := 0; i+1 < len(listing.segments); i++ {
		if listing.segments[i+1] <= snapSeq+1 {
			_ = os.Remove(filepath.Join(s.opts.Dir, walName(listing.segments[i])))
		}
	}
	for i := 0; i+2 < len(listing.snapshots); i++ {
		_ = os.Remove(filepath.Join(s.opts.Dir, snapName(listing.snapshots[i])))
	}
	return nil
}

// RecoveryPoint is where a restart would resume after a graceful Close.
type RecoveryPoint struct {
	SnapshotSeq uint64 // final snapshot position
	TailRecords uint64 // WAL records a restart would replay on top (0 after a clean Close)
}

// Close gracefully shuts the store down: stop the flusher, force-flush and
// sync the WAL tail, write a final snapshot, and close the segment. The
// returned RecoveryPoint is what a restart would recover from.
//
//adlint:allow lockhold (shutdown: the flusher has exited, the final flush runs under the latch by design)
func (s *Store) Close() (RecoveryPoint, error) {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.recovered
	s.mu.Unlock()
	if !started {
		// Opened but never recovered: no flusher, no file, nothing to do.
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return RecoveryPoint{}, nil
	}
	<-s.flusherC
	s.flushBatch(true)

	var err error
	s.mu.Lock()
	sticky := s.sticky
	s.mu.Unlock()
	if sticky == nil {
		err = s.Snapshot()
	} else {
		err = sticky
	}

	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.failPendingLocked()
		if s.buf != nil {
			if ferr := s.buf.Flush(); err == nil {
				err = ferr
			}
		}
		if s.f != nil {
			if s.opts.Fsync != FsyncNone && sticky == nil {
				if serr := s.f.Sync(); err == nil {
					err = serr
				}
			}
			if cerr := s.f.Close(); err == nil {
				err = cerr
			}
		}
	}
	rp := RecoveryPoint{SnapshotSeq: s.snapSeq, TailRecords: s.seq - s.snapSeq}
	s.mu.Unlock()
	return rp, err
}

// Kill simulates a crash for soak tests: the flusher stops without flushing,
// buffered-but-unflushed records are dropped (exactly what a SIGKILL would
// lose), pending barrier waiters fail, and the file handle closes as-is. The
// on-disk state afterwards is whatever group commits had already flushed —
// which, because acks wait on Barrier, covers every acked request.
//
//adlint:allow lockhold (crash simulation: closing the handle under the latch is the point)
func (s *Store) Kill() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.recovered
	s.mu.Unlock()
	if started {
		<-s.flusherC
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.sticky == nil {
		s.sticky = ErrKilled
	}
	s.failPendingLocked()
	if s.f != nil {
		_ = s.f.Close() // deliberately no Flush: the buffer dies with the "process"
	}
}

// LastSeq reports the most recently assigned sequence number.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
