package store

// Native fuzz coverage for the WAL record framing (length + CRC32). The
// decoder's contract under arbitrary corruption: never panic, never accept
// a mutated frame as valid, always stop at a well-defined prefix — every
// event it does return must byte-for-byte re-encode to the file content at
// its recorded offset, and truncating the file at goodEnd must yield the
// same events with a clean (nil) stop reason.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/adaudit/impliedidentity/internal/platform"
)

// validSegment builds a well-formed segment of n records.
func validSegment(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		rec := walRecord{
			Version: walRecordVersion,
			Seq:     uint64(i + 1),
			Mut: platform.Mutation{
				Kind:   platform.MutCampaignCreated,
				NextID: i + 1,
				Campaign: &platform.Campaign{
					ID:   fmt.Sprintf("cmp-%d", i+1),
					Name: fmt.Sprintf("fuzz seed %d", i),
				},
			},
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			tb.Fatal(err)
		}
		if err := writeFrame(&buf, payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// decodeSegmentBytes writes data to a temp file and runs readSegment on it.
func decodeSegmentBytes(tb testing.TB, dir string, data []byte) ([]segmentEvent, int64, error) {
	tb.Helper()
	path := filepath.Join(dir, "fuzz.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		tb.Fatal(err)
	}
	events, goodEnd, stop, err := readSegment(path)
	if err != nil {
		tb.Fatalf("readSegment I/O error: %v", err)
	}
	return events, goodEnd, stop
}

func FuzzWALSegmentDecode(f *testing.F) {
	// Seed corpus: clean segments, a torn tail, flipped bytes in the header
	// and payload, truncations, and garbage.
	clean := validSegment(f, 3)
	f.Add(clean)
	f.Add(validSegment(f, 1))
	f.Add([]byte{})
	f.Add(clean[:len(clean)-3])                // torn final frame
	f.Add(clean[:frameHeaderSize-2])           // torn header
	f.Add(append([]byte("garbage"), clean...)) // misaligned stream
	flip := append([]byte(nil), clean...)
	flip[5] ^= 0xff // CRC byte of the first frame
	f.Add(flip)
	flip2 := append([]byte(nil), clean...)
	flip2[frameHeaderSize] ^= 0x01 // first payload byte
	f.Add(flip2)
	long := append([]byte(nil), clean...)
	long[0], long[1], long[2], long[3] = 0xff, 0xff, 0xff, 0xff // absurd length
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		events, goodEnd, stop := decodeSegmentBytes(t, dir, data)

		// goodEnd is a prefix boundary of the input.
		if goodEnd < 0 || goodEnd > int64(len(data)) {
			t.Fatalf("goodEnd %d outside [0, %d]", goodEnd, len(data))
		}
		if stop == nil && goodEnd != int64(len(data)) {
			t.Fatalf("clean stop but goodEnd %d != len %d", goodEnd, len(data))
		}

		// Every accepted event must round-trip: the frame at its offset must
		// carry a payload that re-parses to the same record, and the framing
		// inside [0, goodEnd) must be exactly the accepted events. Re-reading
		// the good prefix through the same decoder must therefore reproduce
		// them with a clean stop — corruption never leaks into the prefix.
		prefix, prefixEnd, prefixStop := decodeSegmentBytes(t, dir, data[:goodEnd])
		if prefixStop != nil {
			t.Fatalf("re-reading the accepted prefix stopped again: %v", prefixStop)
		}
		if prefixEnd != goodEnd {
			t.Fatalf("prefix re-read ended at %d, want %d", prefixEnd, goodEnd)
		}
		if len(prefix) != len(events) {
			t.Fatalf("prefix re-read found %d events, first read %d", len(prefix), len(events))
		}
		for i := range events {
			if events[i].offset != prefix[i].offset ||
				events[i].rec.Seq != prefix[i].rec.Seq ||
				events[i].rec.Version != prefix[i].rec.Version ||
				events[i].rec.Mut.Kind != prefix[i].rec.Mut.Kind {
				t.Fatalf("event %d changed across re-read: %+v vs %+v", i, events[i], prefix[i])
			}
		}

		// Accepted frames must actually verify: replay the raw framing and
		// confirm each accepted offset starts a checksum-valid frame. This
		// catches a decoder that "accepts" bytes the framing rejects.
		r := bufio.NewReader(bytes.NewReader(data[:goodEnd]))
		for i := 0; ; i++ {
			payload, err := readFrame(r)
			if err == io.EOF {
				if i != len(events) {
					t.Fatalf("raw framing holds %d frames, decoder accepted %d", i, len(events))
				}
				break
			}
			if err != nil {
				t.Fatalf("raw framing rejected accepted prefix at frame %d: %v", i, err)
			}
			var rec walRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				t.Fatalf("accepted frame %d holds undecodable payload: %v", i, err)
			}
			if rec.Version != walRecordVersion {
				t.Fatalf("accepted frame %d has version %d", i, rec.Version)
			}
		}
	})
}

// TestWALSegmentDecodeMutations deterministically sweeps single-byte
// corruptions of a valid segment through the fuzz target's oracle, so the
// mutation coverage runs in ordinary `go test` even without a fuzzing
// session.
func TestWALSegmentDecodeMutations(t *testing.T) {
	clean := validSegment(t, 3)
	dir := t.TempDir()

	baseline, baseEnd, baseStop := decodeSegmentBytes(t, dir, clean)
	if baseStop != nil || baseEnd != int64(len(clean)) || len(baseline) != 3 {
		t.Fatalf("clean segment: events %d, end %d, stop %v", len(baseline), baseEnd, baseStop)
	}

	for pos := 0; pos < len(clean); pos++ {
		mutated := append([]byte(nil), clean...)
		mutated[pos] ^= 0x5a
		events, goodEnd, stop := decodeSegmentBytes(t, dir, mutated)
		// A single flipped byte damages exactly one frame: everything before
		// it must decode, nothing at or after it may.
		if goodEnd > int64(pos) {
			t.Fatalf("flip at %d: goodEnd %d reaches past the damaged byte", pos, goodEnd)
		}
		if stop == nil {
			t.Fatalf("flip at %d: decoder reported a clean segment", pos)
		}
		for _, ev := range events {
			if ev.offset >= int64(pos) {
				t.Fatalf("flip at %d: accepted event at offset %d past the damage", pos, ev.offset)
			}
		}
	}
	// Truncations: every prefix must decode without panicking, with goodEnd
	// at a frame boundary no further than the cut.
	for cut := 0; cut <= len(clean); cut++ {
		_, goodEnd, _ := decodeSegmentBytes(t, dir, clean[:cut])
		if goodEnd > int64(cut) {
			t.Fatalf("cut at %d: goodEnd %d past the cut", cut, goodEnd)
		}
	}
}
