package marketing

import (
	"net/http"
	"sync"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// IdempotencyKeyHeader carries the client's per-call idempotency key on
// mutating requests. A retried request reuses the key of the attempt it
// retries, which is what lets the server collapse them into one execution.
const IdempotencyKeyHeader = "Idempotency-Key"

// MetricIdempotentReplays counts mutating requests answered from the
// idempotency cache instead of re-executed.
const MetricIdempotentReplays = "http.idempotent_replays"

// maxIdemEntries bounds the replay cache. Past the cap, completed entries
// are evicted arbitrarily: an evicted key degrades to at-least-once for
// that one call, which is the pre-idempotency behavior, not corruption.
const maxIdemEntries = 100_000

// IdempotencyCache is the exported handle to the execute-once-per-key
// response cache, for HTTP frontends outside this package (the
// coordinator's router) that need the same semantics on their own mutating
// routes. The marketing server wires its private cache itself.
type IdempotencyCache struct {
	c *idemCache
}

// NewIdempotencyCache builds an empty cache.
func NewIdempotencyCache() *IdempotencyCache {
	return &IdempotencyCache{c: newIdemCache()}
}

// Middleware wraps a mutating endpoint with execute-once-per-key semantics:
// the first request bearing an Idempotency-Key executes, later ones replay
// the stored response byte for byte; 5xx responses are never memoized.
func (ic *IdempotencyCache) Middleware(reg *obs.Registry, next http.Handler) http.Handler {
	return ic.c.middleware(reg, next)
}

// idemEntry memoizes one execution's response. done closes when the first
// execution finishes; the response fields are immutable afterwards.
// Retry-After rides along with the status: a 503 whose header is dropped in
// replay would strip the client's backoff hint.
type idemEntry struct {
	done        chan struct{}
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// idemCache is the server-side half of exactly-once creates: the first
// request bearing a key executes, every later request with the same key
// replays the stored response byte for byte. Responses with 5xx statuses
// are returned to their waiters but NOT memoized, so a genuine server
// failure is re-executed (not replayed forever) when the client retries.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
}

func newIdemCache() *idemCache {
	return &idemCache{entries: map[string]*idemEntry{}}
}

// middleware wraps a mutating endpoint with execute-once-per-key semantics.
// Requests without a key pass straight through.
func (ic *idemCache) middleware(reg *obs.Registry, next http.Handler) http.Handler {
	replays := reg.Counter(MetricIdempotentReplays)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(IdempotencyKeyHeader)
		if key == "" {
			next.ServeHTTP(w, r)
			return
		}
		ic.mu.Lock()
		e, seen := ic.entries[key]
		if seen {
			ic.mu.Unlock()
			// Duplicate: wait out the original execution (it may still be
			// in flight) and replay its stored response.
			<-e.done
			replays.Inc()
			replayResponse(w, e)
			return
		}
		e = &idemEntry{done: make(chan struct{})}
		if len(ic.entries) >= maxIdemEntries {
			ic.evictOneLocked()
		}
		ic.entries[key] = e
		ic.mu.Unlock()

		rec := &responseBuffer{status: http.StatusOK}
		func() {
			// A panic escaping the inner stack (it shouldn't — the recovery
			// middleware sits below) must not strand waiters on a
			// never-closing channel.
			defer func() {
				if v := recover(); v != nil {
					e.status = http.StatusInternalServerError
					e.body = []byte(`{"error":"marketing: handler panicked"}`)
					e.contentType = "application/json"
					ic.forget(key)
					close(e.done)
					panic(v)
				}
			}()
			next.ServeHTTP(rec, r)
		}()
		e.status = rec.status
		e.contentType = rec.header.Get("Content-Type")
		e.retryAfter = rec.header.Get("Retry-After")
		e.body = rec.body
		if e.status >= 500 {
			// Don't memoize failures: the client's retry (same key) should
			// re-execute, not replay the failure.
			ic.forget(key)
		}
		close(e.done)
		replayResponse(w, e)
	})
}

// forget drops a key so the next request bearing it executes fresh.
func (ic *idemCache) forget(key string) {
	ic.mu.Lock()
	delete(ic.entries, key)
	ic.mu.Unlock()
}

// evictOneLocked removes one completed entry; the caller holds ic.mu.
func (ic *idemCache) evictOneLocked() {
	for k, e := range ic.entries {
		select {
		case <-e.done:
			delete(ic.entries, k)
			return
		default:
		}
	}
}

// replayResponse writes a stored response to the wire.
func replayResponse(w http.ResponseWriter, e *idemEntry) {
	if e.contentType != "" {
		w.Header().Set("Content-Type", e.contentType)
	}
	if e.retryAfter != "" {
		w.Header().Set("Retry-After", e.retryAfter)
	}
	w.WriteHeader(e.status)
	_, _ = w.Write(e.body)
}

// responseBuffer captures a handler's response for memoization before any
// byte reaches the wire.
type responseBuffer struct {
	header http.Header
	status int
	body   []byte
}

func (b *responseBuffer) Header() http.Header {
	if b.header == nil {
		b.header = http.Header{}
	}
	return b.header
}

func (b *responseBuffer) WriteHeader(code int) { b.status = code }

func (b *responseBuffer) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}
