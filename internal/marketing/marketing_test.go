package marketing

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

type env struct {
	client *Client
	srv    *httptest.Server
	fl     *voter.Registry
}

var (
	envOnce sync.Once
	shared  env
)

func testEnv(t *testing.T) *env {
	t.Helper()
	envOnce.Do(func() {
		flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 501)
		flCfg.NumVoters = 12000
		fl, err := voter.Generate(flCfg)
		if err != nil {
			panic(err)
		}
		pop, err := population.Build(population.Config{Seed: 502}, fl)
		if err != nil {
			panic(err)
		}
		behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
		if err != nil {
			panic(err)
		}
		cfg := platform.DefaultConfig(503)
		cfg.Training.LogRows = 8000
		cfg.ReviewRejectProb = 0
		p, err := platform.New(cfg, pop, behave)
		if err != nil {
			panic(err)
		}
		s, err := NewServer(p)
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(s.Handler())
		client, err := NewClient(ts.URL)
		if err != nil {
			panic(err)
		}
		shared = env{client: client, srv: ts, fl: fl}
	})
	return &shared
}

func (e *env) uploadAudience(t *testing.T, n int) string {
	t.Helper()
	hashes := make([]string, 0, n)
	for i := range e.fl.Records[:n] {
		r := &e.fl.Records[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	resp, err := e.client.CreateAudience(context.Background(), "api-test", hashes)
	if err != nil {
		t.Fatal(err)
	}
	if resp.MatchedSize == 0 {
		t.Fatal("no users matched")
	}
	return resp.ID
}

func TestNewServerAndClientValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil platform: want error")
	}
	if _, err := NewClient("not a url"); err == nil {
		t.Error("bad URL: want error")
	}
	if _, err := NewClient("ftp://x"); err == nil {
		t.Error("bad scheme: want error")
	}
}

func TestEndToEndCampaignFlow(t *testing.T) {
	e := testEnv(t)
	caID := e.uploadAudience(t, 3000)

	cmp, err := e.client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "flow", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatal(err)
	}
	img := image.FromProfile(demo.Profile{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	ad, err := e.client.CreateAd(context.Background(), CreateAdRequest{
		CampaignID: cmp.ID,
		Creative: WireCreative{
			Image:    WireImageFrom(img),
			Headline: "Advance your career",
			LinkURL:  "https://example.edu/masters",
		},
		Targeting:        WireTargeting{CustomAudienceIDs: []string{caID}},
		DailyBudgetCents: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Status != "ACTIVE" {
		t.Fatalf("ad status %q", ad.Status)
	}
	got, err := e.client.GetAd(context.Background(), ad.ID)
	if err != nil || got.ID != ad.ID {
		t.Fatalf("GetAd: %+v, %v", got, err)
	}
	if err := e.client.Deliver(context.Background(), []string{ad.ID}, 42); err != nil {
		t.Fatal(err)
	}
	ins, err := e.client.Insights(context.Background(), ad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Impressions <= 0 || ins.Reach <= 0 {
		t.Fatalf("insights: %+v", ins)
	}
	var sum int
	for _, row := range ins.Breakdown {
		sum += row.Impressions
		if _, err := demo.ParseAgeBucket(row.Age); err != nil {
			t.Errorf("bad age label %q", row.Age)
		}
		if _, err := demo.ParseGender(row.Gender); err != nil {
			t.Errorf("bad gender label %q", row.Gender)
		}
		if _, err := demo.ParseState(row.Region); err != nil {
			t.Errorf("bad region label %q", row.Region)
		}
	}
	if sum != ins.Impressions {
		t.Errorf("breakdown sums to %d, impressions %d", sum, ins.Impressions)
	}
	// Breakdown must be deterministically sorted.
	for i := 1; i < len(ins.Breakdown); i++ {
		a, b := ins.Breakdown[i-1], ins.Breakdown[i]
		if a.Age > b.Age || (a.Age == b.Age && a.Gender > b.Gender) {
			t.Errorf("breakdown not sorted at %d", i)
		}
	}
}

func TestAPIErrors(t *testing.T) {
	e := testEnv(t)
	if _, err := e.client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "x", Objective: "REACH"}); err == nil {
		t.Error("bad objective: want error")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 400 {
		t.Errorf("want APIError 400, got %v", err)
	}
	if _, err := e.client.Insights(context.Background(), "ad-404"); err == nil {
		t.Error("unknown ad insights: want error")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 404 {
		t.Errorf("want APIError 404, got %v", err)
	}
	if _, err := e.client.GetAd(context.Background(), "ad-404"); err == nil {
		t.Error("unknown ad: want error")
	}
	if _, err := e.client.AppealAd(context.Background(), "ad-404"); err == nil {
		t.Error("appeal unknown ad: want error")
	}
	if _, err := e.client.CreateAudience(context.Background(), "", nil); err == nil {
		t.Error("empty audience: want error")
	}
	if err := e.client.Deliver(context.Background(), nil, 1); err == nil {
		t.Error("deliver nothing: want error")
	}
	// Special-category restriction surfaces through the API.
	cmp, err := e.client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "emp", Objective: "TRAFFIC", SpecialAdCategory: "EMPLOYMENT"})
	if err != nil {
		t.Fatal(err)
	}
	caID := e.uploadAudience(t, 500)
	_, err = e.client.CreateAd(context.Background(), CreateAdRequest{
		CampaignID:       cmp.ID,
		Creative:         WireCreative{Image: WireImageFrom(image.Features{HasPerson: true, AgeYears: 30})},
		Targeting:        WireTargeting{CustomAudienceIDs: []string{caID}, AgeMax: 45},
		DailyBudgetCents: 200,
	})
	if err == nil {
		t.Error("age targeting in employment category: want API error")
	} else if !strings.Contains(err.Error(), "forbids age targeting") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestWireImageRoundTrip(t *testing.T) {
	f := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedTeen})
	f.Nuisance[2] = 0.5
	f.Job = "lumber"
	w := WireImageFrom(f)
	back, err := w.ToFeatures()
	if err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Errorf("round trip: %+v != %+v", back, f)
	}
	bad := WireImage{Nuisance: []float64{1, 2}}
	if _, err := bad.ToFeatures(); err == nil {
		t.Error("short nuisance: want error")
	}
	// Omitted nuisance is allowed (zero vector).
	empty := WireImage{HasPerson: true}
	if _, err := empty.ToFeatures(); err != nil {
		t.Errorf("empty nuisance: %v", err)
	}
}

func TestWireTargetingParsing(t *testing.T) {
	w := WireTargeting{
		CustomAudienceIDs: []string{"ca-1"},
		Genders:           []string{"female"},
		States:            []string{"FL", "NC"},
	}
	tg, err := w.ToTargeting()
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Genders) != 1 || tg.Genders[0] != demo.GenderFemale {
		t.Errorf("genders: %v", tg.Genders)
	}
	if len(tg.States) != 2 {
		t.Errorf("states: %v", tg.States)
	}
	w.Genders = []string{"attack-helicopter"}
	if _, err := w.ToTargeting(); err == nil {
		t.Error("bad gender: want error")
	}
	w.Genders = nil
	w.States = []string{"CA"}
	if _, err := w.ToTargeting(); err == nil {
		t.Error("bad state: want error")
	}
}

func TestMalformedJSONRejected(t *testing.T) {
	e := testEnv(t)
	resp, err := e.srv.Client().Post(e.srv.URL+"/v1/campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Unknown fields are rejected too (DisallowUnknownFields).
	resp2, err := e.srv.Client().Post(e.srv.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"name":"x","objective":"TRAFFIC","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("unknown field: status %d, want 400", resp2.StatusCode)
	}
}

func TestClientRateLimit(t *testing.T) {
	e := testEnv(t)
	e.client.SetMinInterval(30 * time.Millisecond)
	defer e.client.SetMinInterval(0)
	start := time.Now()
	for i := 0; i < 3; i++ {
		// Errors are fine; only pacing matters here.
		_, _ = e.client.GetAd(context.Background(), "ad-404")
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("3 throttled requests took %v, want >= 60ms", elapsed)
	}
}

func TestInsightsBreakdownDimensions(t *testing.T) {
	e := testEnv(t)
	caID := e.uploadAudience(t, 2000)
	cmp, err := e.client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "bd", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatal(err)
	}
	img := image.FromProfile(demo.Profile{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult})
	ad, err := e.client.CreateAd(context.Background(), CreateAdRequest{
		CampaignID:       cmp.ID,
		Creative:         WireCreative{Image: WireImageFrom(img)},
		Targeting:        WireTargeting{CustomAudienceIDs: []string{caID}},
		DailyBudgetCents: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.client.Deliver(context.Background(), []string{ad.ID}, 77); err != nil {
		t.Fatal(err)
	}
	full, err := e.client.Insights(context.Background(), ad.ID)
	if err != nil {
		t.Fatal(err)
	}
	genderOnly, err := e.client.InsightsBreakdown(context.Background(), ad.ID, "gender")
	if err != nil {
		t.Fatal(err)
	}
	if len(genderOnly.Breakdown) > 3 {
		t.Errorf("gender-only breakdown has %d rows", len(genderOnly.Breakdown))
	}
	var sum int
	for _, row := range genderOnly.Breakdown {
		if row.Age != "" || row.Region != "" {
			t.Errorf("unexpected dimension in row: %+v", row)
		}
		sum += row.Impressions
	}
	if sum != full.Impressions {
		t.Errorf("gender-only rows sum to %d, impressions %d", sum, full.Impressions)
	}
	// Unknown dimensions are rejected.
	if _, err := e.client.InsightsBreakdown(context.Background(), ad.ID, "species"); err == nil {
		t.Error("unknown dimension: want error")
	}
}
