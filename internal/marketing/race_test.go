package marketing

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/obs"
)

// TestConcurrentTrafficRace drives the API from many goroutines mixing
// mutating calls (CreateAd, Deliver) with reads (GetAd, Insights, metrics).
// Run under -race it is the regression net for the platform's account
// locking: the serving path must stay race-free without the server-side
// big lock it used to rely on.
func TestConcurrentTrafficRace(t *testing.T) {
	e := testEnv(t)
	caID := e.uploadAudience(t, 800)

	profiles := []demo.Profile{
		{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult},
		{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedElderly},
		{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedTeen},
	}
	createAd := func(worker, i int) (*AdResponse, error) {
		cmp, err := e.client.CreateCampaign(context.Background(), CreateCampaignRequest{
			Name:      fmt.Sprintf("race-w%d-%d", worker, i),
			Objective: "TRAFFIC",
		})
		if err != nil {
			return nil, err
		}
		img := image.FromProfile(profiles[(worker+i)%len(profiles)])
		return e.client.CreateAd(context.Background(), CreateAdRequest{
			CampaignID:       cmp.ID,
			Creative:         WireCreative{Image: WireImageFrom(img), Headline: "race"},
			Targeting:        WireTargeting{CustomAudienceIDs: []string{caID}},
			DailyBudgetCents: 120,
		})
	}

	const (
		writers   = 4 // create → deliver → insights chains
		readers   = 3 // GetAd / Insights polls on delivered ads
		scrapers  = 2 // /metrics + /healthz
		adsPerW   = 2
		pollRound = 6
	)
	delivered := make(chan string, writers*adsPerW)
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adsPerW; i++ {
				ad, err := createAd(w, i)
				if err != nil {
					errs <- err
					return
				}
				if ad.Status != "ACTIVE" {
					continue // rare review rejection config drift; nothing to deliver
				}
				if err := e.client.Deliver(context.Background(), []string{ad.ID}, int64(1000+10*w+i)); err != nil {
					errs <- err
					return
				}
				if _, err := e.client.Insights(context.Background(), ad.ID); err != nil {
					errs <- err
					return
				}
				delivered <- ad.ID
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var known []string
			for i := 0; i < pollRound; i++ {
				select {
				case id := <-delivered:
					known = append(known, id)
				case <-time.After(50 * time.Millisecond):
				}
				for _, id := range known {
					if _, err := e.client.GetAd(context.Background(), id); err != nil {
						errs <- err
						return
					}
					if _, err := e.client.InsightsBreakdown(context.Background(), id, "gender"); err != nil {
						errs <- err
						return
					}
				}
				// Reads against unknown ads exercise the 404 path too.
				if _, err := e.client.GetAd(context.Background(), "ad-404"); err == nil {
					errs <- fmt.Errorf("GetAd(ad-404) should fail")
					return
				}
			}
		}()
	}

	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pollRound; i++ {
				for _, path := range []string{"/metrics", "/healthz"} {
					resp, err := http.Get(e.srv.URL + path)
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMetricsEndpoint checks that the server-side registry counts the
// requests the client actually made.
func TestMetricsEndpoint(t *testing.T) {
	e := testEnv(t)
	before := readSnapshot(t, e.srv.URL)
	base := before.Counters[obs.MetricRequests+"|GET /v1/ads/{id}"]
	const n = 4
	for i := 0; i < n; i++ {
		_, _ = e.client.GetAd(context.Background(), "ad-404")
	}
	after := readSnapshot(t, e.srv.URL)
	got := after.Counters[obs.MetricRequests+"|GET /v1/ads/{id}"] - base
	if got != n {
		t.Errorf("GET /v1/ads/{id} counted %d new requests, want %d", got, n)
	}
	notFound := after.Counters[obs.MetricRequests+".4xx|GET /v1/ads/{id}"] - before.Counters[obs.MetricRequests+".4xx|GET /v1/ads/{id}"]
	if notFound != n {
		t.Errorf("4xx counted %d, want %d", notFound, n)
	}
	if after.Histograms[obs.MetricLatency+"|GET /v1/ads/{id}"].Count < n {
		t.Errorf("latency histogram: %+v", after.Histograms[obs.MetricLatency+"|GET /v1/ads/{id}"])
	}
	if after.Gauges[obs.MetricInFlight] != 0 {
		t.Errorf("in-flight gauge = %d at rest", after.Gauges[obs.MetricInFlight])
	}

	resp, err := http.Get(e.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health obs.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz: %+v", health)
	}
}

func readSnapshot(t *testing.T, baseURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// fakeClock advances only when slept on, so throttled clients can be tested
// without wall-clock waits.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.slept += d
}

func (f *fakeClock) totalSlept() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slept
}

// TestClientInjectableClock runs a heavily throttled client against a fake
// clock: the pacing math must hold with zero real waiting.
func TestClientInjectableClock(t *testing.T) {
	e := testEnv(t)
	client, err := NewClient(e.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	client.SetClock(fc)
	client.SetMinInterval(time.Hour)
	start := time.Now()
	for i := 0; i < 4; i++ {
		_, _ = client.GetAd(context.Background(), "ad-404") // errors fine; pacing is what's tested
	}
	if real := time.Since(start); real > 30*time.Second {
		t.Fatalf("throttled requests consumed %v of wall clock", real)
	}
	// First request goes through unthrottled; the next three each wait out
	// the remaining interval on the fake clock.
	if got := fc.totalSlept(); got != 3*time.Hour {
		t.Errorf("fake clock slept %v, want 3h", got)
	}
	// Restoring the nil clock falls back to the system clock.
	client.SetClock(nil)
	client.SetMinInterval(0)
	if _, err := client.GetAd(context.Background(), "ad-404"); err == nil {
		t.Error("GetAd(ad-404) should fail")
	}
}
