package marketing

// Shard-scoped delivery endpoints: the HTTP surface of the platform's
// coordinated day session (platform/delivery_session.go), consumed by
// internal/coordinator. These are operator-plane routes, not part of the
// advertiser API — an advertiser drives POST /v1/deliver and never sees
// ticks or sessions.
//
// The request/response payloads embed the platform's own wire types
// (DayInit, TickDirective, TickReport) rather than copies: encoding/json
// emits the shortest round-trip representation of every float64 and decodes
// it to the identical bits, so the pacing snapshot a coordinator freezes
// survives the HTTP hop exactly and byte-determinism holds end to end.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"

	"github.com/adaudit/impliedidentity/internal/platform"
)

// BeginDayRequest opens a coordinated delivery session on one shard.
type BeginDayRequest struct {
	Session string   `json:"session"`
	AdIDs   []string `json:"ad_ids"`
	Seed    int64    `json:"seed"`
	Shard   int      `json:"shard"`
	Shards  int      `json:"shards"`
}

// DayTickRequest runs one externally paced tick under the coordinator's
// frozen per-ad snapshot.
type DayTickRequest struct {
	Session    string                   `json:"session"`
	Tick       int                      `json:"tick"`
	Directives []platform.TickDirective `json:"directives"`
}

// FinishDayRequest commits a completed session with the coordinator's
// authoritative per-ad spend totals (cents, identical on every shard).
type FinishDayRequest struct {
	Session    string    `json:"session"`
	SpendCents []float64 `json:"spend_cents"`
}

// AbortDayRequest discards a session.
type AbortDayRequest struct {
	Session string `json:"session"`
}

// dayError maps a session-layer error to its HTTP status: session conflicts
// are 409 (the coordinator's signal to abort and re-run the day), anything
// else is a plain bad request.
func dayError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, platform.ErrSessionConflict) {
		code = http.StatusConflict
	}
	writeError(w, code, err)
}

func (s *Server) handleBeginDay(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[BeginDayRequest](w, r)
	if !ok {
		return
	}
	init, err := s.p.BeginDaySession(req.Session, req.AdIDs, req.Seed, req.Shard, req.Shards)
	if err != nil {
		dayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, init)
}

func (s *Server) handleDayTick(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[DayTickRequest](w, r)
	if !ok {
		return
	}
	rep, err := s.p.DaySessionTick(req.Session, req.Tick, req.Directives)
	if err != nil {
		dayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleFinishDay(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[FinishDayRequest](w, r)
	if !ok {
		return
	}
	if err := s.p.FinishDaySession(req.Session, req.SpendCents); err != nil {
		dayError(w, err)
		return
	}
	// Finish is the session's only durable step (the day mutation): it acks
	// like every other mutating endpoint, after the durability barrier.
	if !s.persisted(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleAbortDay(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[AbortDayRequest](w, r)
	if !ok {
		return
	}
	if err := s.p.AbortDaySession(req.Session); err != nil {
		dayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// IsSessionConflict reports whether err is (or wraps) an HTTP 409 from the
// shard delivery protocol: the backend no longer holds the session the
// caller thinks it does. The coordinator treats it as "abort the day
// everywhere and re-run".
func IsSessionConflict(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict
}

// BeginDay opens a coordinated delivery session on this backend.
func (c *Client) BeginDay(ctx context.Context, req BeginDayRequest) (*platform.DayInit, error) {
	var out platform.DayInit
	if err := c.do(ctx, http.MethodPost, "/v1/shard/delivery/begin", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DayTick runs one coordinated tick on this backend. Re-sending the
// previous tick (a retry whose response was lost) replays its report.
func (c *Client) DayTick(ctx context.Context, req DayTickRequest) (*platform.TickReport, error) {
	var out platform.TickReport
	if err := c.do(ctx, http.MethodPost, "/v1/shard/delivery/tick", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FinishDay commits a completed session on this backend.
func (c *Client) FinishDay(ctx context.Context, session string, spendCents []float64) error {
	return c.do(ctx, http.MethodPost, "/v1/shard/delivery/finish", FinishDayRequest{Session: session, SpendCents: spendCents}, nil)
}

// AbortDay discards a session on this backend; aborting an already-gone
// session succeeds.
func (c *Client) AbortDay(ctx context.Context, session string) error {
	return c.do(ctx, http.MethodPost, "/v1/shard/delivery/abort", AbortDayRequest{Session: session}, nil)
}

// ShardStatusResponse is the rejoin handshake (GET /v1/shard/status): the
// cheap world fingerprint (NumUsers), the replicated-CRUD census, whether a
// coordinated day session is open, and a digest of the REPLICATED account
// state — audiences, campaigns, ads, and the ID-allocator cursor. Two
// healthy shards hold byte-identical copies of those (the State
// serialization is a deep copy with deterministic ordering), so the digest
// is the coordinator's gate for readmitting a resurrected shard.
//
// Per-shard delivery tallies (State.Stats) are deliberately EXCLUDED: in a
// coordinated day each shard delivers only its user partition, so two
// correct shards hold complementary — different — tallies, and hashing them
// would make the gate unpassable after the first committed day. Their
// durability is the WAL barrier's contract, and fleet-level delivery
// agreement is asserted end-to-end on the merged insights surface (the
// differential soak digest), not shard-by-shard.
type ShardStatusResponse struct {
	NumUsers      int                `json:"num_users"`
	StateDigest   string             `json:"state_digest"`
	Inventory     platform.Inventory `json:"inventory"`
	SessionActive bool               `json:"session_active"`
}

func (s *Server) handleShardStatus(w http.ResponseWriter, _ *http.Request) {
	st := s.p.State()
	st.Stats = nil // partitioned, not replicated — see ShardStatusResponse
	raw, err := json.Marshal(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sum := sha256.Sum256(raw)
	writeJSON(w, http.StatusOK, ShardStatusResponse{
		NumUsers:      s.p.NumUsers(),
		StateDigest:   hex.EncodeToString(sum[:]),
		Inventory:     s.p.Inventory(),
		SessionActive: s.p.SessionActive(),
	})
}

// ShardStatus fetches the rejoin handshake from this backend.
func (c *Client) ShardStatus(ctx context.Context) (*ShardStatusResponse, error) {
	var out ShardStatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/shard/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Inventory fetches the backend's operational object census
// (GET /debug/inventory), which the coordinator uses to assert cross-shard
// CRUD convergence.
func (c *Client) Inventory(ctx context.Context) (*platform.Inventory, error) {
	var out platform.Inventory
	if err := c.do(ctx, http.MethodGet, "/debug/inventory", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
