package marketing

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// fastRetry is a retry policy with sub-millisecond delays so tests that do
// use the real clock stay instant.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}
}

// newResilienceClient builds a client against ts with a fake clock, so every
// backoff sleep is recorded instead of waited out.
func newResilienceClient(t *testing.T, ts *httptest.Server) (*Client, *fakeClock) {
	t.Helper()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	client.SetClock(fc)
	return client, fc
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"ad-1","status":"ACTIVE"}`)
	}))
	defer ts.Close()

	client, fc := newResilienceClient(t, ts)
	ad, err := client.GetAd(context.Background(), "ad-1")
	if err != nil {
		t.Fatalf("expected success after retries: %v", err)
	}
	if ad.ID != "ad-1" {
		t.Errorf("ad ID %q", ad.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if got := client.Metrics().Counter(MetricClientRetries).Value(); got != 2 {
		t.Errorf("retries counter %d, want 2", got)
	}
	if fc.totalSlept() <= 0 {
		t.Error("expected backoff sleeps on the injected clock")
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"ad-1","status":"ACTIVE"}`)
	}))
	defer ts.Close()

	client, fc := newResilienceClient(t, ts)
	if _, err := client.GetAd(context.Background(), "ad-1"); err != nil {
		t.Fatal(err)
	}
	// The backoff before the retry must be raised to the server's hint.
	if got := fc.totalSlept(); got < 7*time.Second {
		t.Errorf("slept %v, want >= 7s (Retry-After floor)", got)
	}
}

func TestClientDoesNotRetryTerminalErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"marketing: no such thing"}`)
	}))
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	_, err := client.GetAd(context.Background(), "nope")
	if err == nil {
		t.Fatal("expected error")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err %v, want APIError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a terminal 400, want 1", got)
	}
	if got := client.Metrics().Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retries counter %d, want 0", got)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	client.SetRetryPolicy(fastRetry(3))
	_, err := client.GetAd(context.Background(), "ad-1")
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Errorf("error %q should name the attempt budget", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadGateway {
		t.Errorf("exhaustion error should wrap the last APIError, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestAPIErrorClassification(t *testing.T) {
	retryable := []int{408, 429, 500, 502, 503, 504}
	terminal := []int{400, 401, 403, 404, 409, 413, 422}
	for _, code := range retryable {
		if e := (&APIError{StatusCode: code}); !e.Retryable() {
			t.Errorf("status %d should be retryable", code)
		}
	}
	for _, code := range terminal {
		if e := (&APIError{StatusCode: code}); e.Retryable() {
			t.Errorf("status %d should be terminal", code)
		}
	}

	if Retryable(nil) {
		t.Error("nil error is not retryable")
	}
	if Retryable(context.Canceled) || Retryable(context.DeadlineExceeded) {
		t.Error("context errors are not retryable")
	}
	if Retryable(fmt.Errorf("gate: %w", ErrCircuitOpen)) {
		t.Error("breaker rejection is not retryable")
	}
	if !Retryable(errors.New("connection reset by peer")) {
		t.Error("transport errors are retryable")
	}
	if !Retryable(fmt.Errorf("wrap: %w", &APIError{StatusCode: 503})) {
		t.Error("wrapped retryable APIError should classify as retryable")
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"ad-1","status":"ACTIVE"}`)
	}))
	defer ts.Close()

	client, fc := newResilienceClient(t, ts)
	client.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	client.SetBreakerPolicy(BreakerPolicy{Threshold: 3, Cooldown: time.Minute})

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := client.GetAd(context.Background(), "ad-1"); err == nil {
			t.Fatal("expected failure while unhealthy")
		}
	}
	_, err := client.GetAd(context.Background(), "ad-1")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err %v, want ErrCircuitOpen after threshold failures", err)
	}
	if got := client.Metrics().Counter(MetricClientBreakerRejects).Value(); got != 1 {
		t.Errorf("breaker_rejects %d, want 1", got)
	}

	// After the cooldown a probe goes out; a healthy answer closes the
	// breaker again.
	healthy.Store(true)
	fc.Sleep(2 * time.Minute)
	if _, err := client.GetAd(context.Background(), "ad-1"); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if _, err := client.GetAd(context.Background(), "ad-1"); err != nil {
		t.Fatalf("breaker should be closed after recovery: %v", err)
	}
}

func TestBreakerResetByTerminalAnswer(t *testing.T) {
	// Alternating retryable failures and terminal 404s never trip the
	// breaker: a terminal answer proves the service is alive.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	client.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	client.SetBreakerPolicy(BreakerPolicy{Threshold: 2, Cooldown: time.Hour})
	for i := 0; i < 12; i++ {
		_, err := client.GetAd(context.Background(), "ad-1")
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker tripped on call %d despite interleaved terminal answers", i+1)
		}
	}
}

func TestIdempotencyKeyConstantAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(IdempotencyKeyHeader))
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"cmp-1"}`)
	}))
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	if _, err := client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "x", Objective: "TRAFFIC"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	firstKeys := append([]string(nil), keys...)
	mu.Unlock()
	if len(firstKeys) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(firstKeys))
	}
	if firstKeys[0] == "" {
		t.Fatal("mutating request carried no idempotency key")
	}
	if firstKeys[0] != firstKeys[1] {
		t.Errorf("retry changed the idempotency key: %q then %q", firstKeys[0], firstKeys[1])
	}
	// A fresh call mints a fresh key.
	calls.Store(1) // make the next attempt succeed immediately
	if _, err := client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "y", Objective: "TRAFFIC"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	last := keys[len(keys)-1]
	mu.Unlock()
	if last == firstKeys[0] {
		t.Errorf("distinct calls reused idempotency key %q", last)
	}
}

// TestRetriedCreateDoesNotDoubleCreate drives the full client/server
// idempotency handshake through a lost response: the first execution's
// answer is dropped on the floor, the client's retry carries the same key,
// and the server must replay the memoized response instead of re-executing.
func TestRetriedCreateDoesNotDoubleCreate(t *testing.T) {
	var executions atomic.Int64
	create := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := executions.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":"cmp-%d"}`, n)
	})
	cache := newIdemCache()
	reg := obs.NewRegistry()
	inner := cache.middleware(reg, create)

	var dropped atomic.Bool
	chain := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dropped.CompareAndSwap(false, true) {
			// Execute (side effect happens, response is memoized) but never
			// answer: the sanctioned connection abort loses the response.
			inner.ServeHTTP(httptest.NewRecorder(), r)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(chain)
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	resp, err := client.CreateCampaign(context.Background(), CreateCampaignRequest{Name: "once", Objective: "TRAFFIC"})
	if err != nil {
		t.Fatalf("retried create failed: %v", err)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("handler executed %d times for one logical create, want 1", got)
	}
	if resp.ID != "cmp-1" {
		t.Errorf("replayed response ID %q, want cmp-1", resp.ID)
	}
	if got := reg.Counter(MetricIdempotentReplays).Value(); got != 1 {
		t.Errorf("idempotent_replays %d, want 1", got)
	}
}

// blockingClock parks every Sleep until released, to prove sleeps happen
// outside the client mutex.
type blockingClock struct {
	now      time.Time
	entered  chan struct{}
	release  chan struct{}
	enterOne sync.Once
}

func (b *blockingClock) Now() time.Time { return b.now }

func (b *blockingClock) Sleep(d time.Duration) {
	b.enterOne.Do(func() { close(b.entered) })
	<-b.release
}

// TestThrottleSleepsOutsideLock is the regression test for the throttle
// holding the client mutex for the whole pacing sleep: while one call is
// parked in its throttle sleep, other client operations that need the mutex
// must proceed.
func TestThrottleSleepsOutsideLock(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"ad-1","status":"ACTIVE"}`)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	bc := &blockingClock{
		now:     time.Unix(1_700_000_000, 0),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	client.SetClock(bc)
	client.SetMinInterval(time.Hour)

	// First call claims slot "now" without sleeping; the second must wait
	// out the interval and parks in the blocking clock.
	if _, err := client.GetAd(context.Background(), "ad-1"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.GetAd(context.Background(), "ad-1")
		done <- err
	}()
	select {
	case <-bc.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("second call never reached its throttle sleep")
	}

	// The sleeper holds no lock: mutating client configuration completes.
	cfgDone := make(chan struct{})
	go func() {
		client.SetMinInterval(0)
		close(cfgDone)
	}()
	select {
	case <-cfgDone:
	case <-time.After(2 * time.Second):
		t.Fatal("SetMinInterval blocked behind a sleeping throttle: mutex held across Sleep")
	}

	close(bc.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
