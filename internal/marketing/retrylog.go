package marketing

import "sync"

// The client keeps a journal of calls that needed retries, for postmortems
// after a chaotic run (which call exhausted its budget? what did the last
// attempt see?). Like the server's idempotency cache, the bookkeeping is
// bounded: a soak that retries millions of times must not grow client
// memory without limit, so the journal is a fixed-capacity ring that evicts
// the oldest entry — losing old history, never correctness.

// maxRetryJournal caps the retry journal. Past it the oldest entry is
// evicted; MetricRetryJournalEvictions counts how much history was shed.
const maxRetryJournal = 512

// MetricRetryJournalEvictions counts retry-journal entries evicted to honor
// the capacity bound.
const MetricRetryJournalEvictions = "client.retry_journal_evictions"

// Retry outcomes recorded in RetryEvent.Outcome.
const (
	// RetryRecovered: a later attempt succeeded.
	RetryRecovered = "recovered"
	// RetryExhausted: every attempt in the budget failed retryably.
	RetryExhausted = "exhausted"
	// RetryTerminal: after at least one retry, the call hit a non-retryable
	// answer and stopped early.
	RetryTerminal = "terminal"
)

// RetryEvent is one journal entry: an API call that took more than one
// attempt, with the idempotency key that made the retries safe to send.
type RetryEvent struct {
	Method         string
	Path           string
	IdempotencyKey string
	Attempts       int
	Outcome        string
	// LastError is the error the final retried attempt observed (for a
	// recovered call, the one that triggered the last retry).
	LastError string
}

// retryJournal is the fixed-capacity ring buffer behind the journal.
type retryJournal struct {
	mu      sync.Mutex
	buf     []RetryEvent
	start   int // index of the oldest entry
	n       int
	evicted uint64
}

func newRetryJournal() *retryJournal {
	return &retryJournal{buf: make([]RetryEvent, maxRetryJournal)}
}

// record appends an event, evicting the oldest past capacity; it reports
// whether an eviction happened so the caller can count it.
func (j *retryJournal) record(ev RetryEvent) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = ev
		j.n++
		return false
	}
	j.buf[j.start] = ev
	j.start = (j.start + 1) % len(j.buf)
	j.evicted++
	return true
}

// events returns the journal oldest-first.
func (j *retryJournal) events() []RetryEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RetryEvent, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}

func (j *retryJournal) evictedCount() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

// RetryEvents returns the client's retry journal, oldest entry first. The
// journal holds at most maxRetryJournal entries; RetryEvictions reports how
// many older ones were shed.
func (c *Client) RetryEvents() []RetryEvent {
	return c.journal.events()
}

// RetryEvictions reports how many journal entries were evicted to keep the
// journal within its capacity bound.
func (c *Client) RetryEvictions() uint64 {
	return c.journal.evictedCount()
}
