package marketing

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetryJournalRecordsOutcomes(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1: // first call: one 503 then success → recovered
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			fmt.Fprint(w, `{"id":"ad-1","status":"ACTIVE"}`)
		case 3: // second call: 503 then terminal 404 → terminal
			w.WriteHeader(http.StatusServiceUnavailable)
		case 4:
			w.WriteHeader(http.StatusNotFound)
		default: // third call: nothing but 503s → exhausted
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	client.SetRetryPolicy(fastRetry(3))
	if _, err := client.GetAd(context.Background(), "ad-1"); err != nil {
		t.Fatalf("recovered call: %v", err)
	}
	if _, err := client.GetAd(context.Background(), "ad-2"); err == nil {
		t.Fatal("terminal call: want 404 error")
	}
	if _, err := client.GetAd(context.Background(), "ad-3"); err == nil {
		t.Fatal("exhausted call: want failure")
	}

	events := client.RetryEvents()
	if len(events) != 3 {
		t.Fatalf("journal holds %d events, want 3: %+v", len(events), events)
	}
	for i, want := range []string{RetryRecovered, RetryTerminal, RetryExhausted} {
		if events[i].Outcome != want {
			t.Errorf("event %d outcome %q, want %q", i, events[i].Outcome, want)
		}
		if events[i].Attempts < 2 {
			t.Errorf("event %d records %d attempts; only retried calls belong in the journal", i, events[i].Attempts)
		}
		if events[i].LastError == "" {
			t.Errorf("event %d has no last error", i)
		}
	}
	if events[0].Method != http.MethodGet || events[0].Path != "/v1/ads/ad-1" {
		t.Errorf("event 0 identifies %s %s", events[0].Method, events[0].Path)
	}
}

// TestRetryJournalCapHoldsUnderLoad hammers a permanently failing server
// with far more retried calls than the journal's capacity, concurrently,
// and asserts the bookkeeping stays bounded: at most maxRetryJournal
// entries retained, the overflow counted as evictions, newest entries
// preserved.
func TestRetryJournalCapHoldsUnderLoad(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	client, _ := newResilienceClient(t, ts)
	client.SetRetryPolicy(fastRetry(2))
	// The breaker would fail calls fast (no retries, no journal entries)
	// after its threshold; give it room for the whole load.
	client.SetBreakerPolicy(BreakerPolicy{Threshold: 1 << 30, Cooldown: 0})

	const calls = maxRetryJournal + 300
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < calls; i += 8 {
				_, _ = client.GetAd(context.Background(), fmt.Sprintf("ad-%d", i))
			}
		}(w)
	}
	wg.Wait()

	events := client.RetryEvents()
	if len(events) != maxRetryJournal {
		t.Fatalf("journal holds %d entries, want exactly the cap %d", len(events), maxRetryJournal)
	}
	wantEvicted := uint64(calls - maxRetryJournal)
	if got := client.RetryEvictions(); got != wantEvicted {
		t.Errorf("evictions %d, want %d", got, wantEvicted)
	}
	if got := client.Metrics().Counter(MetricRetryJournalEvictions).Value(); got != int64(wantEvicted) {
		t.Errorf("eviction counter %d, want %d", got, wantEvicted)
	}
	for i, ev := range events {
		if ev.Outcome != RetryExhausted || ev.Attempts != 2 {
			t.Fatalf("entry %d corrupted under concurrent load: %+v", i, ev)
		}
	}
}
