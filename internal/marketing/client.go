package marketing

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
)

// Clock abstracts wall-clock reads and sleeps for the client's throttle,
// retry backoff, and circuit breaker, so load generators and tests can run
// rate-limited, retrying clients against a fake clock without real waits.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// realClock is the default Clock: the system clock.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// SystemClock is the real wall clock, the default when nothing is injected.
// Other packages that measure or pace time (the load generator) default to
// it and accept a replacement, keeping every timing decision routable
// through one injectable seam.
var SystemClock Clock = realClock{}

// Client-side metric names (recorded into the registry passed to
// SetMetrics).
const (
	// MetricClientRetries counts retried attempts (attempts beyond the
	// first for any call).
	MetricClientRetries = "client.retries"
	// MetricClientBreakerRejects counts calls refused locally because the
	// circuit breaker was open.
	MetricClientBreakerRejects = "client.breaker_rejects"
)

// ErrCircuitOpen is returned (wrapped) when the circuit breaker refuses a
// call without touching the network.
var ErrCircuitOpen = errors.New("marketing: circuit breaker open")

// RetryPolicy shapes the client's retry loop: exponential backoff with equal
// jitter, honoring server Retry-After hints.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, including the
	// first. 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay. The actual wait is jittered uniformly
	// in [delay/2, delay] so synchronized clients do not stampede.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
}

// DefaultRetryPolicy mirrors the paper's polite collection posture: a few
// patient retries, never a stampede.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// BreakerPolicy configures the circuit breaker. After Threshold consecutive
// retryable failures (terminal API answers count as service-alive and reset
// the streak) the breaker opens for Cooldown: calls fail fast with
// ErrCircuitOpen instead of hammering a down platform. After Cooldown the
// next call probes; a failure re-opens the breaker.
type BreakerPolicy struct {
	Threshold int
	Cooldown  time.Duration
}

// DefaultBreakerPolicy tolerates a chaotic platform (transient fault rates
// well above anything a real API sustains) while still cutting off a dead
// one within a few seconds.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{Threshold: 10, Cooldown: 5 * time.Second}
}

// Client is the advertiser-side API client the audit tooling uses. Requests
// are optionally rate-limited, mirroring the paper's polite data-collection
// posture (§4.1), and hardened against a flaky platform: every call takes a
// context, retries retryable failures with jittered exponential backoff
// (honoring Retry-After), attaches idempotency keys to mutating requests so
// a retried POST cannot double-create, and trips a circuit breaker after
// sustained failure.
type Client struct {
	baseURL string
	http    *http.Client

	mu          sync.Mutex
	clock       Clock
	minInterval time.Duration
	lastRequest time.Time
	retry       RetryPolicy
	breaker     BreakerPolicy
	consecFails int
	openUntil   time.Time
	rng         *rand.Rand
	reg         *obs.Registry

	idemBase string
	idemSeq  atomic.Uint64

	// journal records calls that needed retries, bounded (see retrylog.go).
	journal *retryJournal
}

// NewClient builds a client for the API at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("marketing: invalid base URL %q", baseURL)
	}
	return &Client{
		baseURL:  strings.TrimRight(baseURL, "/"),
		http:     &http.Client{Timeout: 10 * time.Minute},
		clock:    realClock{},
		retry:    DefaultRetryPolicy(),
		breaker:  DefaultBreakerPolicy(),
		rng:      rand.New(rand.NewSource(rand.Int63())),
		reg:      obs.NewRegistry(),
		idemBase: fmt.Sprintf("ck-%08x", rand.Uint32()),
		journal:  newRetryJournal(),
	}, nil
}

// APIError is a non-2xx response from the API.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint, zero when absent. A
	// present-but-zero header (shed/injected 429s) still means "retryable
	// now", which Retryable reports via the status code.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("marketing: API error %d: %s", e.StatusCode, e.Message)
}

// Retryable classifies the status code: true for responses that a later
// identical request may survive (throttling, timeouts, server-side
// failures), false for terminal client errors (validation, not-found,
// oversized payloads) where retrying only repeats the rejection.
func (e *APIError) Retryable() bool {
	switch e.StatusCode {
	case http.StatusRequestTimeout, // 408
		http.StatusTooManyRequests,     // 429
		http.StatusInternalServerError, // 500
		http.StatusBadGateway,          // 502
		http.StatusServiceUnavailable,  // 503
		http.StatusGatewayTimeout:      // 504
		return true
	}
	return false
}

// Retryable reports whether err is worth retrying: retryable API statuses
// and transport-level failures (connection drops, truncated bodies) are;
// terminal API errors, context cancellation, and open-breaker rejections
// are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrCircuitOpen) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Retryable()
	}
	// Anything else got no HTTP answer at all: a network or truncation
	// failure, retryable by definition.
	return true
}

// SetMinInterval enforces a minimum delay between consecutive API requests.
// Zero disables throttling (the default; the in-process simulator needs no
// politeness, but external deployments of the platform server do).
func (c *Client) SetMinInterval(d time.Duration) {
	c.mu.Lock()
	c.minInterval = d
	c.mu.Unlock()
}

// SetClock replaces the clock behind the throttle, backoff, and breaker. A
// nil clock restores the system clock.
func (c *Client) SetClock(clock Clock) {
	if clock == nil {
		clock = realClock{}
	}
	c.mu.Lock()
	c.clock = clock
	c.mu.Unlock()
}

// SetRetryPolicy replaces the retry policy. A zero MaxAttempts restores the
// default policy.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts <= 0 {
		p = DefaultRetryPolicy()
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy().BaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	c.mu.Lock()
	c.retry = p
	c.mu.Unlock()
}

// SetBreakerPolicy replaces the breaker policy. A zero Threshold restores
// the default; a negative Threshold disables the breaker.
func (c *Client) SetBreakerPolicy(p BreakerPolicy) {
	if p.Threshold == 0 {
		p = DefaultBreakerPolicy()
	}
	c.mu.Lock()
	c.breaker = p
	c.consecFails = 0
	c.openUntil = time.Time{}
	c.mu.Unlock()
}

// SetTransport replaces the client's underlying HTTP transport (nil
// restores the default). A router injects client-side network chaos — the
// faults.Transport with its seeded schedule and partition gate — onto its
// whole shard path this way. Call it before the client's first request; the
// transport is not guarded for mid-flight swaps.
func (c *Client) SetTransport(rt http.RoundTripper) {
	c.http.Transport = rt
}

// Healthz performs one liveness probe (GET /healthz): a single attempt with
// no retries, no backoff, and no breaker involvement, so a supervisor's
// probe loop observes the raw transport outcome on its own cadence.
func (c *Client) Healthz(ctx context.Context) error {
	return c.once(ctx, http.MethodGet, "/healthz", nil, "", nil)
}

// SetMetrics points the client's resilience counters (retries, breaker
// rejections) at reg, so a load generator can fold them into its report.
// Nil restores a private registry.
func (c *Client) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.mu.Lock()
	c.reg = reg
	c.mu.Unlock()
}

// Metrics returns the registry the client counts into.
func (c *Client) Metrics() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg
}

// throttle enforces the minimum interval between requests. It reserves the
// next send slot under the lock but sleeps OUTSIDE it, so one caller
// waiting out the interval does not serialize unrelated callers behind the
// mutex: concurrent callers each reserve consecutive slots and wait them
// out in parallel.
func (c *Client) throttle() {
	c.mu.Lock()
	if c.minInterval <= 0 {
		c.lastRequest = c.clock.Now()
		c.mu.Unlock()
		return
	}
	clock := c.clock
	now := clock.Now()
	slot := c.lastRequest.Add(c.minInterval)
	if slot.Before(now) {
		slot = now
	}
	c.lastRequest = slot
	wait := slot.Sub(now)
	c.mu.Unlock()
	if wait > 0 {
		clock.Sleep(wait)
	}
}

// breakerAllow refuses the call while the breaker is open.
func (c *Client) breakerAllow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.breaker.Threshold < 0 || c.openUntil.IsZero() {
		return nil
	}
	if c.clock.Now().Before(c.openUntil) {
		c.reg.Counter(MetricClientBreakerRejects).Inc()
		return fmt.Errorf("%w (until %s)", ErrCircuitOpen, c.openUntil.Format(time.RFC3339))
	}
	// Cooldown elapsed: half-open. Clear the gate so a probe goes out; a
	// failure will re-open it.
	c.openUntil = time.Time{}
	return nil
}

// breakerRecord feeds one attempt outcome into the breaker. ok covers both
// 2xx and terminal API answers: the service responded, the circuit is fine.
func (c *Client) breakerRecord(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.consecFails = 0
		return
	}
	c.consecFails++
	if c.breaker.Threshold > 0 && c.consecFails >= c.breaker.Threshold {
		c.openUntil = c.clock.Now().Add(c.breaker.Cooldown)
		c.consecFails = 0
	}
}

// backoffDelay computes the jittered wait before retry number `retry`
// (1-based), raised to the server's Retry-After hint when that is larger.
func (c *Client) backoffDelay(retry int, retryAfter time.Duration) time.Duration {
	c.mu.Lock()
	p := c.retry
	jitter := c.rng.Float64()
	c.mu.Unlock()
	d := p.BaseDelay << uint(retry-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// Equal jitter: [d/2, d].
	d = d/2 + time.Duration(jitter*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// nextIdempotencyKey mints a key unique to this client instance and call.
func (c *Client) nextIdempotencyKey() string {
	return fmt.Sprintf("%s-%d", c.idemBase, c.idemSeq.Add(1))
}

// idemKeyContextKey carries an explicit idempotency key through a context.
type idemKeyContextKey struct{}

// WithIdempotencyKey returns a context that makes mutating calls under it
// carry the given idempotency key instead of a freshly minted one. A
// frontend that fans one inbound mutating request out to several backends
// forwards the inbound key this way: if the frontend's own response is lost
// and its caller retries, the re-executed fan-out deduplicates at every
// backend instead of double-creating on the shards that already executed.
func WithIdempotencyKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, idemKeyContextKey{}, key)
}

// do runs one API call through the full resilience stack: breaker gate,
// throttle, attempt, classify, back off, retry. Mutating methods carry an
// idempotency key that stays constant across retries, so the server can
// deduplicate a retried create whose first response was lost.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("marketing: encoding request: %w", err)
		}
	}
	idemKey := ""
	if method != http.MethodGet {
		if k, _ := ctx.Value(idemKeyContextKey{}).(string); k != "" {
			idemKey = k
		} else {
			idemKey = c.nextIdempotencyKey()
		}
	}
	c.mu.Lock()
	maxAttempts := c.retry.MaxAttempts
	clock := c.clock
	retries := c.reg.Counter(MetricClientRetries)
	evictions := c.reg.Counter(MetricRetryJournalEvictions)
	c.mu.Unlock()
	if maxAttempts <= 0 {
		maxAttempts = 1
	}

	// journal logs this call into the bounded retry journal; only calls
	// that actually retried are recorded.
	journal := func(attempts int, outcome string, lastErr error) {
		if attempts <= 1 {
			return
		}
		msg := ""
		if lastErr != nil {
			msg = lastErr.Error()
		}
		if c.journal.record(RetryEvent{
			Method:         method,
			Path:           path,
			IdempotencyKey: idemKey,
			Attempts:       attempts,
			Outcome:        outcome,
			LastError:      msg,
		}) {
			evictions.Inc()
		}
	}

	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.breakerAllow(); err != nil {
			return err
		}
		if attempt > 1 {
			retries.Inc()
		}
		c.throttle()
		err := c.once(ctx, method, path, body, idemKey, out)
		if err == nil {
			c.breakerRecord(true)
			journal(attempt, RetryRecovered, lastErr)
			return nil
		}
		lastErr = err
		if !Retryable(err) {
			// A terminal API answer proves the service is up and resets the
			// breaker streak; context cancellation says nothing about the
			// service and is not recorded at all.
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				c.breakerRecord(true)
			}
			journal(attempt, RetryTerminal, err)
			return err
		}
		c.breakerRecord(false)
		if attempt == maxAttempts {
			break
		}
		var retryAfter time.Duration
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			retryAfter = apiErr.RetryAfter
		}
		clock.Sleep(c.backoffDelay(attempt, retryAfter))
	}
	journal(maxAttempts, RetryExhausted, lastErr)
	return fmt.Errorf("marketing: %s %s failed after %d attempts: %w", method, path, maxAttempts, lastErr)
}

// once performs a single HTTP attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, idemKey string, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set(IdempotencyKeyHeader, idemKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("marketing: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	// Read the whole body before judging the response: a connection cut
	// mid-body (Content-Length mismatch) surfaces here as a read error and
	// must be treated as transport failure, not as a short success.
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("marketing: %s %s: reading response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr ErrorResponse
		msg := resp.Status
		if jsonErr := json.Unmarshal(payload, &apiErr); jsonErr == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.clockNow()),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("marketing: decoding response: %w", err)
	}
	return nil
}

// clockNow reads the injectable clock.
func (c *Client) clockNow() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock.Now()
}

// parseRetryAfter handles both forms of the header: delay-seconds and
// HTTP-date. Unparseable or absent values yield zero.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// CreateAudience uploads PII hashes and returns the matched audience.
func (c *Client) CreateAudience(ctx context.Context, name string, piiHashes []string) (*CreateAudienceResponse, error) {
	var out CreateAudienceResponse
	err := c.do(ctx, http.MethodPost, "/v1/customaudiences", CreateAudienceRequest{Name: name, PIIHashes: piiHashes}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateCampaign registers a campaign.
func (c *Client) CreateCampaign(ctx context.Context, req CreateCampaignRequest) (*CreateCampaignResponse, error) {
	var out CreateCampaignResponse
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateAd creates one ad and reports its review status.
func (c *Client) CreateAd(ctx context.Context, req CreateAdRequest) (*AdResponse, error) {
	var out AdResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ads", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AppealAd appeals a rejected ad.
func (c *Client) AppealAd(ctx context.Context, adID string) (*AdResponse, error) {
	var out AdResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ads/"+url.PathEscape(adID)+"/appeal", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetAd fetches an ad's status.
func (c *Client) GetAd(ctx context.Context, adID string) (*AdResponse, error) {
	var out AdResponse
	if err := c.do(ctx, http.MethodGet, "/v1/ads/"+url.PathEscape(adID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Deliver runs the listed ads for one simulated day with the server's
// default delivery worker count.
func (c *Client) Deliver(ctx context.Context, adIDs []string, seed int64) error {
	return c.DeliverWorkers(ctx, adIDs, seed, 0)
}

// DeliverWorkers runs the listed ads for one simulated day with an explicit
// delivery worker count (0 defers to the server's default, 1 is the
// sequential oracle engine).
func (c *Client) DeliverWorkers(ctx context.Context, adIDs []string, seed int64, workers int) error {
	return c.do(ctx, http.MethodPost, "/v1/deliver", DeliverRequest{AdIDs: adIDs, Seed: seed, Workers: workers}, nil)
}

// Insights fetches the delivery report for an ad with the full
// age×gender×region breakdown.
func (c *Client) Insights(ctx context.Context, adID string) (*InsightsResponse, error) {
	var out InsightsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/insights?ad_id="+url.QueryEscape(adID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InsightsBreakdown fetches the delivery report broken down by only the
// requested dimensions (any of "age", "gender", "region").
func (c *Client) InsightsBreakdown(ctx context.Context, adID string, dims ...string) (*InsightsResponse, error) {
	var out InsightsResponse
	path := "/v1/insights?ad_id=" + url.QueryEscape(adID) + "&breakdown=" + url.QueryEscape(strings.Join(dims, ","))
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
