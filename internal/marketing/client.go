package marketing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Clock abstracts wall-clock reads and sleeps for the client's throttle, so
// load generators and tests can run rate-limited clients against a fake
// clock without real waits.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// realClock is the default Clock: the system clock.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// Client is the advertiser-side API client the audit tooling uses. Requests
// are serialized and optionally rate-limited, mirroring the paper's polite
// data-collection posture (§4.1: "collecting the delivery data from a single
// vantage point without parallelizing queries").
type Client struct {
	baseURL string
	http    *http.Client

	mu          sync.Mutex
	clock       Clock
	minInterval time.Duration
	lastRequest time.Time
}

// NewClient builds a client for the API at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("marketing: invalid base URL %q", baseURL)
	}
	return &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		http:    &http.Client{Timeout: 10 * time.Minute},
		clock:   realClock{},
	}, nil
}

// APIError is a non-2xx response from the API.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("marketing: API error %d: %s", e.StatusCode, e.Message)
}

// SetMinInterval enforces a minimum delay between consecutive API requests.
// Zero disables throttling (the default; the in-process simulator needs no
// politeness, but external deployments of the platform server do).
func (c *Client) SetMinInterval(d time.Duration) {
	c.mu.Lock()
	c.minInterval = d
	c.mu.Unlock()
}

// SetClock replaces the clock behind the throttle. A nil clock restores the
// system clock.
func (c *Client) SetClock(clock Clock) {
	if clock == nil {
		clock = realClock{}
	}
	c.mu.Lock()
	c.clock = clock
	c.mu.Unlock()
}

// throttle serializes throttled requests and enforces the minimum interval.
func (c *Client) throttle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.minInterval > 0 {
		if wait := c.minInterval - c.clock.Now().Sub(c.lastRequest); wait > 0 {
			c.clock.Sleep(wait)
		}
	}
	c.lastRequest = c.clock.Now()
}

func (c *Client) do(method, path string, in, out any) error {
	c.throttle()
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("marketing: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.baseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("marketing: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr ErrorResponse
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("marketing: decoding response: %w", err)
	}
	return nil
}

// CreateAudience uploads PII hashes and returns the matched audience.
func (c *Client) CreateAudience(name string, piiHashes []string) (*CreateAudienceResponse, error) {
	var out CreateAudienceResponse
	err := c.do(http.MethodPost, "/v1/customaudiences", CreateAudienceRequest{Name: name, PIIHashes: piiHashes}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateCampaign registers a campaign.
func (c *Client) CreateCampaign(req CreateCampaignRequest) (*CreateCampaignResponse, error) {
	var out CreateCampaignResponse
	if err := c.do(http.MethodPost, "/v1/campaigns", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateAd creates one ad and reports its review status.
func (c *Client) CreateAd(req CreateAdRequest) (*AdResponse, error) {
	var out AdResponse
	if err := c.do(http.MethodPost, "/v1/ads", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AppealAd appeals a rejected ad.
func (c *Client) AppealAd(adID string) (*AdResponse, error) {
	var out AdResponse
	if err := c.do(http.MethodPost, "/v1/ads/"+url.PathEscape(adID)+"/appeal", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetAd fetches an ad's status.
func (c *Client) GetAd(adID string) (*AdResponse, error) {
	var out AdResponse
	if err := c.do(http.MethodGet, "/v1/ads/"+url.PathEscape(adID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Deliver runs the listed ads for one simulated day.
func (c *Client) Deliver(adIDs []string, seed int64) error {
	return c.do(http.MethodPost, "/v1/deliver", DeliverRequest{AdIDs: adIDs, Seed: seed}, nil)
}

// Insights fetches the delivery report for an ad with the full
// age×gender×region breakdown.
func (c *Client) Insights(adID string) (*InsightsResponse, error) {
	var out InsightsResponse
	if err := c.do(http.MethodGet, "/v1/insights?ad_id="+url.QueryEscape(adID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InsightsBreakdown fetches the delivery report broken down by only the
// requested dimensions (any of "age", "gender", "region").
func (c *Client) InsightsBreakdown(adID string, dims ...string) (*InsightsResponse, error) {
	var out InsightsResponse
	path := "/v1/insights?ad_id=" + url.QueryEscape(adID) + "&breakdown=" + url.QueryEscape(strings.Join(dims, ","))
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
