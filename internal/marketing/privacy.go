package marketing

import (
	"github.com/adaudit/impliedidentity/internal/privacy"
)

// cellKey canonicalizes one breakdown row into the privacy layer's cell key.
// The key is built from the row's released dimension strings — dimensions
// aggregated out by the breakdown parameter contribute an empty value — so
// every process that names a cell names it identically, which is what makes
// the seeded noise stream agree between a single-process server and a
// coordinator privatizing a merged cross-shard report.
func cellKey(row BreakdownRow) string {
	return "age=" + row.Age + "|gender=" + row.Gender + "|region=" + row.Region
}

// PrivatizeInsights applies a privacy policy to one wire insights response.
// At LevelOff, or when the response already carries a Privacy block
// (idempotence), the input is returned unchanged — in particular the
// privacy-off wire format is byte-identical to the pre-privacy API. The
// input response is never mutated.
//
// The noise scope is the response's AdID, so two ads' identical cells draw
// independent noise. SpendCents deliberately passes through untouched: it is
// a billing quantity, not an audience-measurement one, and the coordinator's
// cross-shard spend-equality assertion depends on it staying exact.
func PrivatizeInsights(cfg privacy.Config, resp *InsightsResponse) *InsightsResponse {
	if !cfg.Enabled() || resp == nil || resp.Privacy != nil {
		return resp
	}
	rep := &privacy.Report{
		Scope:       resp.AdID,
		Impressions: resp.Impressions,
		Reach:       resp.Reach,
		Clicks:      resp.Clicks,
		Hourly:      resp.Hourly,
		Cells:       make([]privacy.Cell, len(resp.Breakdown)),
	}
	rows := make(map[string]BreakdownRow, len(resp.Breakdown))
	for i, row := range resp.Breakdown {
		key := cellKey(row)
		rep.Cells[i] = privacy.Cell{Key: key, Count: row.Impressions}
		rows[key] = row
	}
	priv := privacy.Apply(cfg, rep)

	out := *resp
	out.Impressions = priv.Impressions
	out.Reach = priv.Reach
	out.Clicks = priv.Clicks
	out.Hourly = priv.Hourly
	out.Breakdown = make([]BreakdownRow, 0, len(priv.Cells))
	for _, c := range priv.Cells {
		row := rows[c.Key]
		row.Impressions = c.Count
		out.Breakdown = append(out.Breakdown, row)
	}
	out.Privacy = &WirePrivacy{
		Level:           cfg.Level.String(),
		K:               cfg.K,
		Epsilon:         cfg.Epsilon,
		SuppressedCells: priv.SuppressedCells,
	}
	return &out
}
