package marketing

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/privacy"
)

// ServerLimits bound each request's claim on the server: wall time, body
// size, and concurrency. They are the server-side half of graceful
// degradation — past the in-flight cap the server sheds with 429 instead of
// queueing into collapse.
type ServerLimits struct {
	// RequestTimeout caps one request's wall time (503 past it). Zero
	// disables the cap.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body (413 past it). Zero disables.
	MaxBodyBytes int64
	// MaxInFlight caps concurrently served requests (429 past it). Zero
	// disables shedding.
	MaxInFlight int
}

// DefaultServerLimits are generous for the in-process simulator: wide
// enough that no healthy workload hits them, tight enough that a stuck or
// abusive one is contained.
func DefaultServerLimits() ServerLimits {
	return ServerLimits{
		RequestTimeout: 60 * time.Second,
		MaxBodyBytes:   16 << 20,
		MaxInFlight:    256,
	}
}

// ServerOption tunes a Server at construction.
type ServerOption func(*Server)

// WithLimits replaces the default request limits.
func WithLimits(l ServerLimits) ServerOption {
	return func(s *Server) { s.limits = l }
}

// Persister is the durability barrier a state store provides: Barrier
// returns once every platform mutation applied so far is persistent.
type Persister interface {
	Barrier(ctx context.Context) error
}

// WithPersister makes every mutating endpoint wait for durability before
// acking: the response is written only after the mutation's WAL record is
// flushed (persist-before-respond). A failed barrier turns into a 503,
// which the idempotency cache deliberately does not memoize, so the
// client's retry re-executes once the store recovers.
func WithPersister(p Persister) ServerOption {
	return func(s *Server) { s.persist = p }
}

// WithRegistry shares a metrics registry with the server instead of the
// private default, so store and HTTP metrics land in one GET /metrics.
func WithRegistry(reg *obs.Registry) ServerOption {
	return func(s *Server) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithPrivacy sets the response-privatization policy for GET /v1/insights.
// The default (and the zero Config) is privacy off: raw reports, wire bytes
// identical to the pre-privacy API. In a sharded fleet this option belongs
// on the coordinator, not on shard servers — see the merge-then-privatize
// rule in package privacy.
func WithPrivacy(cfg privacy.Config) ServerOption {
	return func(s *Server) { s.privacy.Store(&cfg) }
}

// Server wraps a platform in the HTTP API. It is safe for concurrent use:
// the platform itself serializes mutating calls behind its account lock
// (as a real API would serialize per-account writes) while read endpoints
// proceed concurrently, so the server adds no locking of its own. Every
// endpoint is instrumented into the server's metrics registry, exposed at
// GET /metrics with a liveness probe at GET /healthz.
//
// The handler chain hardens every endpoint: in-flight load shedding,
// idempotency-key deduplication on mutating routes, panic recovery,
// per-request timeouts, and request-body limits, each counted in the
// registry.
type Server struct {
	p       *platform.Platform
	reg     *obs.Registry
	limits  ServerLimits
	idem    *idemCache
	persist Persister
	// privacy holds the insights privatization policy. Atomic so the audit
	// sweep can switch levels on a live server between (read-only) insights
	// queries without a restart; nil and the zero Config both mean off.
	privacy atomic.Pointer[privacy.Config]
}

// NewServer wraps a platform.
func NewServer(p *platform.Platform, opts ...ServerOption) (*Server, error) {
	if p == nil {
		return nil, fmt.Errorf("marketing: nil platform")
	}
	s := &Server{p: p, reg: obs.NewRegistry(), limits: DefaultServerLimits(), idem: newIdemCache()}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Metrics returns the server's metrics registry (the data behind
// GET /metrics), for in-process consumers like shutdown logging.
func (s *Server) Metrics() *obs.Registry {
	return s.reg
}

// SetPrivacy replaces the insights privatization policy at runtime.
// Privatization is response-time and stateless, so switching levels needs no
// restart and touches no delivery state — the audit sweep leans on this to
// re-read the same campaign's insights at several privacy levels.
func (s *Server) SetPrivacy(cfg privacy.Config) {
	s.privacy.Store(&cfg)
}

// privacyConfig returns the active policy (zero Config when unset).
func (s *Server) privacyConfig() privacy.Config {
	if p := s.privacy.Load(); p != nil {
		return *p
	}
	return privacy.Config{}
}

// Handler returns the API routing table with per-endpoint instrumentation
// and the resilience chain. Outside-in per route: instrumentation → load
// shedding → idempotency (mutating routes only) → panic recovery → request
// timeout → body limit → handler. Shedding sits outside idempotency so a
// shed request consumes nothing; recovery sits outside the timeout because
// http.TimeoutHandler re-panics handler panics in the serving goroutine.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, fn http.HandlerFunc) {
		var h http.Handler = fn
		h = obs.BodyLimit(s.limits.MaxBodyBytes, h)
		h = obs.Timeout(s.reg, s.limits.RequestTimeout, h)
		h = obs.Recover(s.reg, h)
		if strings.HasPrefix(pattern, "POST ") {
			h = s.idem.middleware(s.reg, h)
		}
		h = obs.LoadShed(s.reg, s.limits.MaxInFlight, h)
		mux.Handle(pattern, obs.Instrument(s.reg, pattern, h))
	}
	handle("POST /v1/customaudiences", s.handleCreateAudience)
	handle("POST /v1/campaigns", s.handleCreateCampaign)
	handle("POST /v1/ads", s.handleCreateAd)
	handle("POST /v1/ads/{id}/appeal", s.handleAppeal)
	handle("GET /v1/ads/{id}", s.handleGetAd)
	handle("POST /v1/deliver", s.handleDeliver)
	handle("GET /v1/insights", s.handleInsights)
	// Shard-scoped delivery protocol (see shard.go): the coordinator's
	// operator plane, not part of the advertiser API.
	handle("POST /v1/shard/delivery/begin", s.handleBeginDay)
	handle("POST /v1/shard/delivery/tick", s.handleDayTick)
	handle("POST /v1/shard/delivery/finish", s.handleFinishDay)
	handle("POST /v1/shard/delivery/abort", s.handleAbortDay)
	// Rejoin handshake: state digest + census for the supervisor's
	// digest-gated readmission of a resurrected shard.
	handle("GET /v1/shard/status", s.handleShardStatus)
	mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	mux.Handle("GET /healthz", obs.HealthzHandler(s.reg))
	// Operational census, not part of the advertiser API: the crash-recovery
	// smoke test diffs it across a kill/restart.
	mux.HandleFunc("GET /debug/inventory", s.handleInventory)
	// Full serialized account state — the exact bytes the rejoin digest
	// hashes. A digest-gate failure is undiagnosable from the hash alone;
	// diffing two shards' /debug/state dumps names the diverging field.
	mux.HandleFunc("GET /debug/state", s.handleState)
	return mux
}

// persisted waits for the durability barrier before a mutating response is
// acked. On failure it writes the 503 and reports false; without a
// configured persister it is a no-op.
func (s *Server) persisted(w http.ResponseWriter, r *http.Request) bool {
	if s.persist == nil {
		return true
	}
	if err := s.persist.Barrier(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("marketing: durability barrier: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding failures after the header is written can only be logged by
	// the caller's transport; the types here are all marshalable.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("marketing: request body exceeds %d bytes", tooBig.Limit))
			return v, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("marketing: malformed request: %w", err))
		return v, false
	}
	return v, true
}

func (s *Server) handleCreateAudience(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[CreateAudienceRequest](w, r)
	if !ok {
		return
	}
	ca, err := s.p.CreateCustomAudience(req.Name, req.PIIHashes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.persisted(w, r) {
		return
	}
	writeJSON(w, http.StatusCreated, CreateAudienceResponse{ID: ca.ID, MatchedSize: ca.Size})
}

func (s *Server) handleCreateCampaign(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[CreateCampaignRequest](w, r)
	if !ok {
		return
	}
	obj, err := platform.ParseObjective(req.Objective)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	special, err := platform.ParseSpecialAdCategory(req.SpecialAdCategory)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.p.CreateCampaign(req.Name, obj, special, req.AccountAge)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.persisted(w, r) {
		return
	}
	writeJSON(w, http.StatusCreated, CreateCampaignResponse{ID: c.ID})
}

func (s *Server) handleCreateAd(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[CreateAdRequest](w, r)
	if !ok {
		return
	}
	img, err := req.Creative.Image.ToFeatures()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	targeting, err := req.Targeting.ToTargeting()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	creative := platform.Creative{
		Image:    img,
		Headline: req.Creative.Headline,
		Body:     req.Creative.Body,
		LinkURL:  req.Creative.LinkURL,
	}
	ad, err := s.p.CreateAd(req.CampaignID, creative, targeting, req.DailyBudgetCents)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.persisted(w, r) {
		return
	}
	writeJSON(w, http.StatusCreated, AdResponse{ID: ad.ID, Status: ad.Status.String()})
}

func (s *Server) handleAppeal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ad, err := s.p.AppealAd(id)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "unknown ad") {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	if !s.persisted(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, AdResponse{ID: ad.ID, Status: ad.Status.String()})
}

func (s *Server) handleGetAd(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ad, err := s.p.Ad(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, AdResponse{ID: ad.ID, Status: ad.Status.String()})
}

func (s *Server) handleDeliver(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[DeliverRequest](w, r)
	if !ok {
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("workers must be non-negative, got %d", req.Workers))
		return
	}
	err := s.p.RunDayWorkers(req.AdIDs, req.Seed, req.Workers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.persisted(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, DeliverResponse{Delivered: len(req.AdIDs)})
}

func (s *Server) handleInventory(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Inventory())
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.p.State())
}

func (s *Server) handleInsights(w http.ResponseWriter, r *http.Request) {
	adID := r.URL.Query().Get("ad_id")
	if adID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("marketing: ad_id query parameter required"))
		return
	}
	// The breakdown parameter selects reporting dimensions, like the real
	// Insights API's `breakdowns`; omitted dimensions are aggregated out.
	dims := map[string]bool{"age": true, "gender": true, "region": true}
	if raw := r.URL.Query().Get("breakdown"); raw != "" {
		dims = map[string]bool{}
		for _, d := range strings.Split(raw, ",") {
			switch d {
			case "age", "gender", "region":
				dims[d] = true
			default:
				writeError(w, http.StatusBadRequest, fmt.Errorf("marketing: unknown breakdown dimension %q", d))
				return
			}
		}
	}
	st, err := s.p.Insights(adID)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := InsightsResponse{
		AdID:        st.AdID,
		Impressions: st.Impressions,
		Reach:       st.Reach,
		Clicks:      st.Clicks,
		SpendCents:  st.SpendCents,
		Hourly:      append([]int(nil), st.HourlySeries...),
	}
	agg := map[BreakdownRow]int{}
	for k, n := range st.Breakdown {
		row := BreakdownRow{}
		if dims["age"] {
			row.Age = k.Age.String()
		}
		if dims["gender"] {
			row.Gender = k.Gender.String()
		}
		if dims["region"] {
			row.Region = k.Region.String()
		}
		agg[row] += n
	}
	for row, n := range agg {
		row.Impressions = n
		resp.Breakdown = append(resp.Breakdown, row)
	}
	sort.Slice(resp.Breakdown, func(i, j int) bool {
		a, b := resp.Breakdown[i], resp.Breakdown[j]
		if a.Age != b.Age {
			return a.Age < b.Age
		}
		if a.Gender != b.Gender {
			return a.Gender < b.Gender
		}
		return a.Region < b.Region
	})
	writeJSON(w, http.StatusOK, *PrivatizeInsights(s.privacyConfig(), &resp))
}
