// Package marketing exposes the simulated platform through an HTTP JSON API
// shaped like an advertiser-facing marketing API, plus a Go client. The
// audit code drives the platform exclusively through this interface — the
// paper's methodology is defined by what an advertiser can see (campaign
// CRUD, audience uploads, delivery breakdowns) and cannot see (user
// identities, the delivery model), and routing everything through the API
// keeps the reproduction honest about that boundary.
package marketing

import (
	"fmt"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/platform"
)

// CreateAudienceRequest uploads a PII-hash list for matching.
type CreateAudienceRequest struct {
	Name      string   `json:"name"`
	PIIHashes []string `json:"pii_hashes"`
}

// CreateAudienceResponse reports the matched audience.
type CreateAudienceResponse struct {
	ID          string `json:"id"`
	MatchedSize int    `json:"matched_size"`
}

// CreateCampaignRequest creates a campaign.
type CreateCampaignRequest struct {
	Name              string `json:"name"`
	Objective         string `json:"objective"`
	SpecialAdCategory string `json:"special_ad_category,omitempty"`
	AccountAge        int    `json:"account_age,omitempty"`
}

// CreateCampaignResponse reports the new campaign ID.
type CreateCampaignResponse struct {
	ID string `json:"id"`
}

// WireImage is the JSON form of an ad image. It carries the feature-space
// representation (the reproduction's stand-in for uploading image bytes).
type WireImage struct {
	HasPerson  bool      `json:"has_person"`
	GenderAxis float64   `json:"gender_axis"`
	RaceAxis   float64   `json:"race_axis"`
	AgeYears   float64   `json:"age_years"`
	Nuisance   []float64 `json:"nuisance"`
	Job        string    `json:"job,omitempty"`
}

// ToFeatures converts the wire form, validating the nuisance length.
func (w *WireImage) ToFeatures() (image.Features, error) {
	f := image.Features{
		HasPerson:  w.HasPerson,
		GenderAxis: w.GenderAxis,
		RaceAxis:   w.RaceAxis,
		AgeYears:   w.AgeYears,
		Job:        w.Job,
	}
	if len(w.Nuisance) != 0 && len(w.Nuisance) != image.NumNuisance {
		return image.Features{}, fmt.Errorf("marketing: nuisance vector length %d, want %d", len(w.Nuisance), image.NumNuisance)
	}
	copy(f.Nuisance[:], w.Nuisance)
	return f, nil
}

// WireImageFrom converts features to the wire form.
func WireImageFrom(f image.Features) WireImage {
	return WireImage{
		HasPerson:  f.HasPerson,
		GenderAxis: f.GenderAxis,
		RaceAxis:   f.RaceAxis,
		AgeYears:   f.AgeYears,
		Nuisance:   append([]float64(nil), f.Nuisance[:]...),
		Job:        f.Job,
	}
}

// WireCreative is the JSON form of an ad creative.
type WireCreative struct {
	Image    WireImage `json:"image"`
	Headline string    `json:"headline"`
	Body     string    `json:"body"`
	LinkURL  string    `json:"link_url"`
}

// WireTargeting is the JSON form of a targeting spec.
type WireTargeting struct {
	CustomAudienceIDs []string `json:"custom_audience_ids"`
	AgeMin            int      `json:"age_min,omitempty"`
	AgeMax            int      `json:"age_max,omitempty"`
	Genders           []string `json:"genders,omitempty"`
	States            []string `json:"states,omitempty"`
}

// ToTargeting converts the wire form.
func (w *WireTargeting) ToTargeting() (platform.Targeting, error) {
	t := platform.Targeting{
		CustomAudienceIDs: w.CustomAudienceIDs,
		AgeMin:            w.AgeMin,
		AgeMax:            w.AgeMax,
	}
	for _, g := range w.Genders {
		pg, err := demo.ParseGender(g)
		if err != nil {
			return platform.Targeting{}, err
		}
		t.Genders = append(t.Genders, pg)
	}
	for _, s := range w.States {
		ps, err := demo.ParseState(s)
		if err != nil {
			return platform.Targeting{}, err
		}
		t.States = append(t.States, ps)
	}
	return t, nil
}

// CreateAdRequest creates one ad.
type CreateAdRequest struct {
	CampaignID       string        `json:"campaign_id"`
	Creative         WireCreative  `json:"creative"`
	Targeting        WireTargeting `json:"targeting"`
	DailyBudgetCents int           `json:"daily_budget_cents"`
}

// AdResponse reports an ad's identity and review status.
type AdResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// DeliverRequest advances the simulated clock: it runs the listed ads for
// one 24-hour window. This is the reproduction's substitute for waiting a
// real day.
type DeliverRequest struct {
	AdIDs []string `json:"ad_ids"`
	Seed  int64    `json:"seed"`
	// Workers selects the delivery engine's shard count. 0 (the default,
	// and what older clients send) defers to the server's configured
	// default; 1 forces the sequential oracle engine. Delivery output is
	// deterministic for a fixed (seed, workers) pair.
	Workers int `json:"workers,omitempty"`
}

// DeliverResponse acknowledges the run.
type DeliverResponse struct {
	Delivered int `json:"delivered"`
}

// BreakdownRow is one insights row: impressions for an age × gender ×
// region cell.
type BreakdownRow struct {
	Age         string `json:"age"`
	Gender      string `json:"gender"`
	Region      string `json:"region"`
	Impressions int    `json:"impressions"`
}

// InsightsResponse is the delivery report for one ad.
type InsightsResponse struct {
	AdID        string         `json:"ad_id"`
	Impressions int            `json:"impressions"`
	Reach       int            `json:"reach"`
	Clicks      int            `json:"clicks"`
	SpendCents  float64        `json:"spend_cents"`
	Breakdown   []BreakdownRow `json:"breakdown"`
	// Hourly is impressions per pacing interval over the delivery day; its
	// sum equals Impressions.
	Hourly []int `json:"hourly,omitempty"`
	// Privacy describes the privatization applied to this report. nil means
	// the report is raw (privacy level off) — the field is omitted entirely
	// so the privacy-off wire format is byte-identical to the pre-privacy
	// API. A server or coordinator never privatizes a response whose Privacy
	// field is already set (idempotence), and a coordinator refuses to merge
	// pre-privatized shard responses (merge-then-privatize).
	Privacy *WirePrivacy `json:"privacy,omitempty"`
}

// WirePrivacy records the privatization a report passed through.
type WirePrivacy struct {
	Level string `json:"level"`
	// K is the k-anonymity threshold (0 when level is off).
	K int `json:"k,omitempty"`
	// Epsilon is the DP noise parameter (0 unless level is k-anon+dp).
	Epsilon float64 `json:"epsilon,omitempty"`
	// SuppressedCells counts the breakdown cells withheld from this report.
	SuppressedCells int `json:"suppressed_cells"`
}

// ErrorResponse is the API error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}
