package marketing

import (
	"encoding/json"
	"testing"

	"github.com/adaudit/impliedidentity/internal/privacy"
)

func sampleInsights() *InsightsResponse {
	return &InsightsResponse{
		AdID:        "ad-3",
		Impressions: 400,
		Reach:       310,
		Clicks:      12,
		SpendCents:  200,
		Hourly:      []int{100, 150, 150},
		Breakdown: []BreakdownRow{
			{Age: "18-24", Gender: "female", Region: "FL", Impressions: 140},
			{Age: "18-24", Gender: "male", Region: "FL", Impressions: 6},
			{Age: "25-34", Gender: "female", Region: "FL", Impressions: 254},
		},
	}
}

// TestPrivatizeInsightsOffIsByteIdentical: level off must not change the
// wire bytes at all — no privacy block, no reordering, nothing.
func TestPrivatizeInsightsOffIsByteIdentical(t *testing.T) {
	resp := sampleInsights()
	before, _ := json.Marshal(resp)
	got := PrivatizeInsights(privacy.Config{}, resp)
	if got != resp {
		t.Fatal("level off should return the input unchanged")
	}
	after, _ := json.Marshal(got)
	if string(before) != string(after) {
		t.Fatalf("wire bytes changed at level off:\n before %s\n after  %s", before, after)
	}
}

// TestPrivatizeInsightsKAnon: the small cell is suppressed, a complementary
// cell goes with it, and the wire privacy block records both.
func TestPrivatizeInsightsKAnon(t *testing.T) {
	cfg := privacy.Config{Level: privacy.LevelKAnon, K: 20}
	resp := sampleInsights()
	got := PrivatizeInsights(cfg, resp)
	if len(resp.Breakdown) != 3 {
		t.Fatal("input response was mutated")
	}
	if got.Privacy == nil || got.Privacy.Level != "k-anon" || got.Privacy.K != 20 {
		t.Fatalf("privacy block %+v", got.Privacy)
	}
	if got.Privacy.SuppressedCells != 2 || len(got.Breakdown) != 1 {
		t.Fatalf("suppressed %d cells, released %d — want 2 suppressed (primary + complementary), 1 released",
			got.Privacy.SuppressedCells, len(got.Breakdown))
	}
	if got.Breakdown[0].Impressions != 254 {
		t.Fatalf("released cell %+v, want the 254-impression cell", got.Breakdown[0])
	}
	if got.Impressions != 400 || got.SpendCents != 200 {
		t.Fatalf("k-anon must not perturb totals: %+v", got)
	}
	// Idempotence at the wire level: a privatized response passes through.
	if again := PrivatizeInsights(cfg, got); again != got {
		t.Fatal("re-privatizing a privatized response must be a no-op")
	}
}

// TestPrivatizeInsightsDPDeterministic: same policy, same response → same
// noisy bytes; different seed → different stream (with overwhelming
// probability over this many cells).
func TestPrivatizeInsightsDPDeterministic(t *testing.T) {
	cfg := privacy.Config{Level: privacy.LevelKAnonDP, K: 2, Epsilon: 0.5, Seed: 11}
	a, _ := json.Marshal(PrivatizeInsights(cfg, sampleInsights()))
	b, _ := json.Marshal(PrivatizeInsights(cfg, sampleInsights()))
	if string(a) != string(b) {
		t.Fatalf("same policy diverged:\n %s\n %s", a, b)
	}
	cfg.Seed = 12
	c, _ := json.Marshal(PrivatizeInsights(cfg, sampleInsights()))
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical noisy output")
	}
	// SpendCents is exempt from noise by design.
	var round InsightsResponse
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatal(err)
	}
	if round.SpendCents != 200 {
		t.Fatalf("SpendCents perturbed to %v", round.SpendCents)
	}
}
