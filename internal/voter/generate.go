package voter

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// GeneratorConfig controls synthetic registry generation.
type GeneratorConfig struct {
	State demo.State
	Seed  int64
	// NumVoters is the registry size. The default presets keep every
	// stratification cell populated well beyond the sampler's needs.
	NumVoters int
	// NumZIPs is the number of distinct ZIP codes in the state.
	NumZIPs int
	// BlackShare is the overall fraction of Black voters. Real registries
	// are not balanced; the stratified sampler is what produces balance.
	BlackShare float64
	// PovertyRaceCorrelation in [0,1] controls how strongly a ZIP's Black
	// population share tracks its poverty rate, reproducing the residential-
	// segregation pattern Appendix A controls for. 0 decouples them.
	PovertyRaceCorrelation float64
}

// DefaultGeneratorConfig returns the configuration used by the full-scale
// experiments for the given state.
func DefaultGeneratorConfig(state demo.State, seed int64) GeneratorConfig {
	return GeneratorConfig{
		State:                  state,
		Seed:                   seed,
		NumVoters:              120000,
		NumZIPs:                120,
		BlackShare:             0.30,
		PovertyRaceCorrelation: 0.6,
	}
}

type zipInfo struct {
	code       string
	city       string
	poverty    float64
	blackShare float64
	weight     float64 // sampling weight (population proxy)
}

// Generator produces a synthetic registry one record at a time, so a
// population can be streamed off it without materializing the registry.
// Construction performs the ZIP-table draws; each Next consumes the per-
// record draws. The draw sequence is a frozen contract: for the same
// configuration, NewGenerator+Next yields records byte-identical to
// Generate's registry, record for record.
type Generator struct {
	cfg         GeneratorConfig
	rng         *rand.Rand
	zips        []zipInfo
	totalWeight float64
	zipPoverty  map[string]float64
	idPrefix    string
	i           int
}

// NewGenerator validates the configuration and draws the ZIP table.
// Demographic marginals: gender ≈ 50/50, ages drawn from a voter-file
// distribution that skews older, race by ZIP composition.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if cfg.State != demo.StateFL && cfg.State != demo.StateNC {
		return nil, fmt.Errorf("voter: generate for non-study state %v", cfg.State)
	}
	if cfg.NumVoters <= 0 || cfg.NumZIPs <= 0 {
		return nil, fmt.Errorf("voter: need positive NumVoters (%d) and NumZIPs (%d)", cfg.NumVoters, cfg.NumZIPs)
	}
	if cfg.BlackShare <= 0 || cfg.BlackShare >= 1 {
		return nil, fmt.Errorf("voter: BlackShare %v outside (0,1)", cfg.BlackShare)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	cities := cityNamesFL
	zipBase := 32000 // FL ZIPs are 32xxx-34xxx
	idPrefix := "FL"
	if cfg.State == demo.StateNC {
		cities = cityNamesNC
		zipBase = 27000 // NC ZIPs are 27xxx-28xxx
		idPrefix = "NC"
	}

	// Build ZIPs. Poverty ~ scaled Beta-like draw; Black share mixes the
	// statewide share with a poverty-linked component.
	zips := make([]zipInfo, cfg.NumZIPs)
	zipPoverty := make(map[string]float64, cfg.NumZIPs)
	for i := range zips {
		pov := 0.03 + 0.30*math.Pow(rng.Float64(), 1.7) // long right tail, mean ≈ 0.12
		// Map poverty to a z-ish score in [-1, 1] around the median.
		povScore := (pov - 0.12) / 0.15
		if povScore > 1 {
			povScore = 1
		} else if povScore < -1 {
			povScore = -1
		}
		// Logit-normal ZIP composition: residential segregation makes real
		// ZIP race shares highly dispersed (a few percent to near-total),
		// which both Appendix A and the lookalike extension depend on.
		logit := math.Log(cfg.BlackShare/(1-cfg.BlackShare)) +
			1.5*cfg.PovertyRaceCorrelation*povScore + 0.7*rng.NormFloat64()
		share := 1 / (1 + math.Exp(-logit))
		if share < 0.02 {
			share = 0.02
		} else if share > 0.97 {
			share = 0.97
		}
		zips[i] = zipInfo{
			code:       fmt.Sprintf("%05d", zipBase+rng.Intn(2000)),
			city:       cities[rng.Intn(len(cities))],
			poverty:    pov,
			blackShare: share,
			weight:     0.2 + rng.Float64(),
		}
		zipPoverty[zips[i].code] = pov
	}
	var totalWeight float64
	for i := range zips {
		totalWeight += zips[i].weight
	}
	return &Generator{
		cfg:         cfg,
		rng:         rng,
		zips:        zips,
		totalWeight: totalWeight,
		zipPoverty:  zipPoverty,
		idPrefix:    idPrefix,
	}, nil
}

// Next fills rec with the next record and reports whether one was produced;
// it returns false once NumVoters records have been emitted.
func (g *Generator) Next(rec *Record) bool {
	if g.i >= g.cfg.NumVoters {
		return false
	}
	i := g.i
	g.i++
	rng := g.rng
	z := &g.zips[pickWeighted(rng, g.zips, g.totalWeight)]
	gender := demo.GenderMale
	gc := 'M'
	if rng.Float64() < 0.5 {
		gender = demo.GenderFemale
		gc = 'F'
	}
	race := demo.RaceWhite
	if rng.Float64() < z.blackShare {
		race = demo.RaceBlack
	}
	// The draws below happen in the struct-literal evaluation order of the
	// original one-shot generator (first name, last name, street number,
	// street, age) — reordering any of them would shift every later record.
	firstName := randomFirstName(rng, gc)
	lastName := randomLastName(rng)
	streetNum := 1 + rng.Intn(9999)
	street := randomStreet(rng)
	age := sampleVoterAge(rng)
	*rec = Record{
		ID:        fmt.Sprintf("%s%08d", g.idPrefix, i+1),
		FirstName: firstName,
		LastName:  lastName,
		Address:   fmt.Sprintf("%d %s", streetNum, street),
		City:      z.city,
		State:     g.cfg.State,
		ZIP:       z.code,
		Gender:    gender,
		Race:      race,
		BirthYear: StudyYear - age,
	}
	return true
}

// ZIPPoverty returns the generated ZIP→poverty table (shared, do not
// mutate).
func (g *Generator) ZIPPoverty() map[string]float64 { return g.zipPoverty }

// Generate builds a synthetic registry. Generation is deterministic in the
// seed; it is the one-shot materialization of Generator's stream.
func Generate(cfg GeneratorConfig) (*Registry, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	records := make([]Record, 0, cfg.NumVoters)
	var rec Record
	for g.Next(&rec) {
		records = append(records, rec)
	}
	return &Registry{State: cfg.State, Records: records, ZIPPoverty: g.zipPoverty}, nil
}

func pickWeighted(rng *rand.Rand, zips []zipInfo, total float64) int {
	t := rng.Float64() * total
	for i := range zips {
		t -= zips[i].weight
		if t <= 0 {
			return i
		}
	}
	return len(zips) - 1
}

// sampleVoterAge draws an age from a distribution resembling registered-
// voter files: adults only, skewing older. Bucket weights approximate the
// relative registry sizes implied by Table 1 (older buckets are larger).
var voterAgeBucketWeights = []struct {
	bucket demo.AgeBucket
	weight float64
}{
	{demo.Age18to24, 0.11},
	{demo.Age25to34, 0.15},
	{demo.Age35to44, 0.15},
	{demo.Age45to54, 0.17},
	{demo.Age55to64, 0.19},
	{demo.Age65Plus, 0.23},
}

func sampleVoterAge(rng *rand.Rand) int {
	t := rng.Float64()
	for _, w := range voterAgeBucketWeights {
		t -= w.weight
		if t <= 0 {
			lo, hi := w.bucket.Bounds()
			return lo + rng.Intn(hi-lo+1)
		}
	}
	return 70
}
