package voter

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// This file implements readers and writers for the two public voter-extract
// formats the paper uses as ground truth (§3.3, refs [31] and [51]). Both are
// tab-delimited; they differ in header convention, column order, and coding:
//
//   - Florida ("Voter Extract Disk File"): no header row; race is a numeric
//     census code (3 = Black not Hispanic, 5 = White not Hispanic); birth
//     date as MM/DD/YYYY.
//   - North Carolina ("ncvoter"): header row; race_code is a letter (B, W,
//     O); birth_year as a bare year.
//
// The synthetic generator emits these same formats so the parsing code path
// matches what an audit against the real files would run.

// Florida race codes (subset relevant to the study).
const (
	flRaceBlack = 3
	flRaceWhite = 5
	flRaceOther = 9
)

// WriteFL writes records in the Florida extract layout.
func WriteFL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for i := range records {
		r := &records[i]
		if r.State != demo.StateFL {
			return fmt.Errorf("voter: record %s is %v, not FL", r.ID, r.State)
		}
		race := flRaceOther
		switch r.Race {
		case demo.RaceBlack:
			race = flRaceBlack
		case demo.RaceWhite:
			race = flRaceWhite
		}
		gender := "U"
		switch r.Gender {
		case demo.GenderMale:
			gender = "M"
		case demo.GenderFemale:
			gender = "F"
		}
		// CountyCode, VoterID, Last, Suffix, First, Middle, Addr1, City,
		// State, Zip, Gender, Race, BirthDate.
		_, err := fmt.Fprintf(bw, "DAD\t%s\t%s\t\t%s\t\t%s\t%s\tFL\t%s\t%s\t%d\t01/01/%04d\n",
			r.ID, r.LastName, r.FirstName, r.Address, r.City, r.ZIP, gender, race, r.BirthYear)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseFL reads records in the Florida extract layout. Records with race
// codes outside the study's White/Black axis are kept with RaceOther.
func ParseFL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 13 {
			return nil, fmt.Errorf("voter: FL line %d: %d fields, want 13", line, len(f))
		}
		raceCode, err := strconv.Atoi(f[11])
		if err != nil {
			return nil, fmt.Errorf("voter: FL line %d: race code %q: %v", line, f[11], err)
		}
		race := demo.RaceOther
		switch raceCode {
		case flRaceBlack:
			race = demo.RaceBlack
		case flRaceWhite:
			race = demo.RaceWhite
		}
		gender, err := demo.ParseGender(f[10])
		if err != nil {
			return nil, fmt.Errorf("voter: FL line %d: %v", line, err)
		}
		birth := f[12]
		if len(birth) != 10 {
			return nil, fmt.Errorf("voter: FL line %d: birth date %q", line, birth)
		}
		year, err := strconv.Atoi(birth[6:])
		if err != nil {
			return nil, fmt.Errorf("voter: FL line %d: birth year %q: %v", line, birth, err)
		}
		out = append(out, Record{
			ID:        f[1],
			LastName:  f[2],
			FirstName: f[4],
			Address:   f[6],
			City:      f[7],
			State:     demo.StateFL,
			ZIP:       f[9],
			Gender:    gender,
			Race:      race,
			BirthYear: year,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ncHeader is the header row of the North Carolina layout (column subset).
const ncHeader = "county_id\tvoter_reg_num\tlast_name\tfirst_name\tres_street_address\tres_city_desc\tstate_cd\tzip_code\trace_code\tgender_code\tbirth_year"

// WriteNC writes records in the North Carolina ncvoter layout.
func WriteNC(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, ncHeader); err != nil {
		return err
	}
	for i := range records {
		r := &records[i]
		if r.State != demo.StateNC {
			return fmt.Errorf("voter: record %s is %v, not NC", r.ID, r.State)
		}
		race := "O"
		switch r.Race {
		case demo.RaceBlack:
			race = "B"
		case demo.RaceWhite:
			race = "W"
		}
		gender := "U"
		switch r.Gender {
		case demo.GenderMale:
			gender = "M"
		case demo.GenderFemale:
			gender = "F"
		}
		_, err := fmt.Fprintf(bw, "92\t%s\t%s\t%s\t%s\t%s\tNC\t%s\t%s\t%s\t%d\n",
			r.ID, r.LastName, r.FirstName, r.Address, r.City, r.ZIP, race, gender, r.BirthYear)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseNC reads records in the North Carolina ncvoter layout.
func ParseNC(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("voter: NC file empty")
	}
	if got := sc.Text(); got != ncHeader {
		return nil, fmt.Errorf("voter: NC header mismatch: %q", got)
	}
	var out []Record
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 11 {
			return nil, fmt.Errorf("voter: NC line %d: %d fields, want 11", line, len(f))
		}
		race := demo.RaceOther
		switch f[8] {
		case "B":
			race = demo.RaceBlack
		case "W":
			race = demo.RaceWhite
		}
		gender, err := demo.ParseGender(f[9])
		if err != nil {
			return nil, fmt.Errorf("voter: NC line %d: %v", line, err)
		}
		year, err := strconv.Atoi(f[10])
		if err != nil {
			return nil, fmt.Errorf("voter: NC line %d: birth year %q: %v", line, f[10], err)
		}
		out = append(out, Record{
			ID:        f[1],
			LastName:  f[2],
			FirstName: f[3],
			Address:   f[4],
			City:      f[5],
			State:     demo.StateNC,
			ZIP:       f[7],
			Gender:    gender,
			Race:      race,
			BirthYear: year,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
