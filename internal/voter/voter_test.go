package voter

import (
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
)

func testRegistry(t *testing.T, state demo.State, n int) *Registry {
	t.Helper()
	cfg := DefaultGeneratorConfig(state, 42)
	cfg.NumVoters = n
	reg, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRecordAgeAndBucket(t *testing.T) {
	r := Record{BirthYear: StudyYear - 30}
	if r.Age() != 30 {
		t.Errorf("Age = %d", r.Age())
	}
	if r.AgeBucket() != demo.Age25to34 {
		t.Errorf("AgeBucket = %v", r.AgeBucket())
	}
}

func TestRecordValidate(t *testing.T) {
	good := Record{ID: "FL1", State: demo.StateFL, ZIP: "33101", BirthYear: 1980}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record: %v", err)
	}
	bad := []Record{
		{State: demo.StateFL, ZIP: "33101", BirthYear: 1980},               // no ID
		{ID: "X", State: demo.StateOther, ZIP: "33101", BirthYear: 1980},   // bad state
		{ID: "X", State: demo.StateFL, ZIP: "331", BirthYear: 1980},        // bad ZIP
		{ID: "X", State: demo.StateFL, ZIP: "33101", BirthYear: StudyYear}, // age 0
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d: want error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testRegistry(t, demo.StateFL, 500)
	b := testRegistry(t, demo.StateFL, 500)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across same-seed runs", i)
		}
	}
}

func TestGenerateMarginals(t *testing.T) {
	reg := testRegistry(t, demo.StateNC, 20000)
	var female, black int
	for i := range reg.Records {
		r := &reg.Records[i]
		if err := r.Validate(); err != nil {
			t.Fatalf("generated invalid record: %v", err)
		}
		if r.Gender == demo.GenderFemale {
			female++
		}
		if r.Race == demo.RaceBlack {
			black++
		}
	}
	n := float64(len(reg.Records))
	if f := float64(female) / n; f < 0.45 || f > 0.55 {
		t.Errorf("female share %v, want ≈ 0.5", f)
	}
	if b := float64(black) / n; b < 0.2 || b > 0.4 {
		t.Errorf("black share %v, want ≈ 0.3", b)
	}
}

func TestGeneratePovertyRaceCorrelation(t *testing.T) {
	// Black voters should live in higher-poverty ZIPs on average — the
	// pattern Appendix A controls for.
	reg := testRegistry(t, demo.StateFL, 20000)
	var wSum, bSum float64
	var wN, bN int
	for i := range reg.Records {
		r := &reg.Records[i]
		p := reg.ZIPPoverty[r.ZIP]
		switch r.Race {
		case demo.RaceWhite:
			wSum += p
			wN++
		case demo.RaceBlack:
			bSum += p
			bN++
		}
	}
	if wN == 0 || bN == 0 {
		t.Fatal("degenerate registry")
	}
	if bSum/float64(bN) <= wSum/float64(wN) {
		t.Errorf("mean poverty: black %v <= white %v; correlation not reproduced",
			bSum/float64(bN), wSum/float64(wN))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GeneratorConfig{State: demo.StateOther, NumVoters: 10, NumZIPs: 2, BlackShare: 0.3}); err == nil {
		t.Error("bad state: want error")
	}
	if _, err := Generate(GeneratorConfig{State: demo.StateFL, NumVoters: 0, NumZIPs: 2, BlackShare: 0.3}); err == nil {
		t.Error("zero voters: want error")
	}
	if _, err := Generate(GeneratorConfig{State: demo.StateFL, NumVoters: 10, NumZIPs: 2, BlackShare: 1.5}); err == nil {
		t.Error("bad black share: want error")
	}
}

func TestStudyCellsComplete(t *testing.T) {
	cells := StudyCells()
	if len(cells) != 24 {
		t.Fatalf("StudyCells = %d, want 24", len(cells))
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Errorf("duplicate cell %v", c)
		}
		seen[c] = true
	}
}

func TestCellCounts(t *testing.T) {
	recs := []Record{
		{BirthYear: StudyYear - 20, Gender: demo.GenderMale, Race: demo.RaceWhite},
		{BirthYear: StudyYear - 21, Gender: demo.GenderMale, Race: demo.RaceWhite},
		{BirthYear: StudyYear - 70, Gender: demo.GenderFemale, Race: demo.RaceBlack},
	}
	counts := CellCounts(recs)
	if counts[Cell{Age: demo.Age18to24, Gender: demo.GenderMale, Race: demo.RaceWhite}] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if counts[Cell{Age: demo.Age65Plus, Gender: demo.GenderFemale, Race: demo.RaceBlack}] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestStratifiedSampleBalanced(t *testing.T) {
	reg := testRegistry(t, demo.StateFL, 30000)
	rng := rand.New(rand.NewSource(1))
	sample := StratifiedSample(reg.Records, 0, rng)
	if len(sample) == 0 {
		t.Fatal("empty sample")
	}
	if err := VerifyBalance(sample); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedSampleCap(t *testing.T) {
	reg := testRegistry(t, demo.StateNC, 30000)
	rng := rand.New(rand.NewSource(2))
	sample := StratifiedSample(reg.Records, 50, rng)
	counts := CellCounts(sample)
	for c, n := range counts {
		if n > 50 {
			t.Errorf("cell %v has %d > cap", c, n)
		}
	}
	if err := VerifyBalance(sample); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedSampleSkipsOtherRace(t *testing.T) {
	recs := []Record{
		{ID: "1", BirthYear: StudyYear - 30, Gender: demo.GenderMale, Race: demo.RaceOther},
		{ID: "2", BirthYear: StudyYear - 30, Gender: demo.GenderUnknown, Race: demo.RaceWhite},
	}
	sample := StratifiedSample(recs, 0, rand.New(rand.NewSource(3)))
	if len(sample) != 0 {
		t.Errorf("sample should exclude other-race and unknown-gender records, got %d", len(sample))
	}
}

func TestTable1ShapeAndOlderBucketsLarger(t *testing.T) {
	reg := testRegistry(t, demo.StateFL, 60000)
	rng := rand.New(rand.NewSource(4))
	sample := StratifiedSample(reg.Records, 0, rng)
	rows := Table1(sample)
	if len(rows) != 6 {
		t.Fatalf("Table1 rows = %d, want 6", len(rows))
	}
	for _, row := range rows {
		if row.Total != 4*row.GroupSize {
			t.Errorf("%s: total %d != 4×group %d", row.Age, row.Total, row.GroupSize)
		}
	}
	// The paper's Table 1 shows older buckets yielding larger groups; our
	// generator reproduces the registry-age skew behind that.
	if rows[5].GroupSize <= rows[0].GroupSize {
		t.Errorf("65+ group (%d) should exceed 18-24 group (%d)", rows[5].GroupSize, rows[0].GroupSize)
	}
}

func TestVerifyBalanceDetectsImbalance(t *testing.T) {
	recs := []Record{
		{BirthYear: StudyYear - 30, Gender: demo.GenderMale, Race: demo.RaceWhite},
		{BirthYear: StudyYear - 30, Gender: demo.GenderMale, Race: demo.RaceWhite},
		{BirthYear: StudyYear - 30, Gender: demo.GenderFemale, Race: demo.RaceWhite},
		{BirthYear: StudyYear - 30, Gender: demo.GenderMale, Race: demo.RaceBlack},
		{BirthYear: StudyYear - 30, Gender: demo.GenderFemale, Race: demo.RaceBlack},
	}
	if err := VerifyBalance(recs); err == nil {
		t.Error("imbalanced sample: want error")
	}
}
