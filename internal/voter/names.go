package voter

import "math/rand"

// Name pools for the synthetic registries. The specific names carry no
// signal — Custom Audience matching hashes them — but distinct, plausible
// values exercise the PII normalization path the way real extracts would.
var (
	firstNamesMale = []string{
		"James", "Robert", "John", "Michael", "David", "William", "Richard",
		"Joseph", "Thomas", "Charles", "Christopher", "Daniel", "Matthew",
		"Anthony", "Mark", "Donald", "Steven", "Andrew", "Paul", "Joshua",
		"Kenneth", "Kevin", "Brian", "George", "Timothy", "Ronald", "Jason",
		"Edward", "Jeffrey", "Ryan", "Jacob", "Gary", "Nicholas", "Eric",
	}
	firstNamesFemale = []string{
		"Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
		"Susan", "Jessica", "Sarah", "Karen", "Lisa", "Nancy", "Betty",
		"Sandra", "Margaret", "Ashley", "Kimberly", "Emily", "Donna",
		"Michelle", "Carol", "Amanda", "Melissa", "Deborah", "Stephanie",
		"Dorothy", "Rebecca", "Sharon", "Laura", "Cynthia", "Amy", "Angela",
	}
	lastNames = []string{
		"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
		"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
		"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
		"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
		"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
		"King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
		"Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
	}
	streetNames = []string{
		"Oak St", "Maple Ave", "Pine Rd", "Cedar Ln", "Elm Dr", "Main St",
		"Church St", "Park Ave", "Lake Dr", "Hill Rd", "River Rd",
		"Sunset Blvd", "Magnolia Way", "Palmetto St", "Cypress Ct",
		"Dogwood Ln", "Azalea Dr", "Bay St", "Gulf Blvd", "Atlantic Ave",
	}
	cityNamesFL = []string{
		"Jacksonville", "Miami", "Tampa", "Orlando", "St. Petersburg",
		"Hialeah", "Tallahassee", "Fort Lauderdale", "Cape Coral",
		"Pembroke Pines", "Gainesville", "Sarasota",
	}
	cityNamesNC = []string{
		"Charlotte", "Raleigh", "Greensboro", "Durham", "Winston-Salem",
		"Fayetteville", "Cary", "Wilmington", "High Point", "Asheville",
		"Concord", "Greenville",
	}
)

func randomFirstName(rng *rand.Rand, g rune) string {
	if g == 'F' {
		return firstNamesFemale[rng.Intn(len(firstNamesFemale))]
	}
	return firstNamesMale[rng.Intn(len(firstNamesMale))]
}

func randomLastName(rng *rand.Rand) string {
	return lastNames[rng.Intn(len(lastNames))]
}

func randomStreet(rng *rand.Rand) string {
	return streetNames[rng.Intn(len(streetNames))]
}
