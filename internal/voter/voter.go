// Package voter implements the public-voter-record substrate the paper's
// methodology is built on (§3.2-§3.3): registry records with self-reported
// race and gender, the Florida and North Carolina extract file formats, a
// synthetic registry generator (the real files are public records, but we
// cannot ship them; the generator produces registries with realistic
// marginals and the poverty/race correlation Appendix A depends on), the
// stratified sampler that builds balanced target audiences (Table 1), and
// the poverty-matched subsampler from Appendix A.
package voter

import (
	"fmt"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// StudyYear is the reference year for converting birth years to ages; the
// paper's campaigns ran in 2022.
const StudyYear = 2022

// Record is one voter-registration record, carrying the fields the audit
// methodology consumes: PII for Custom Audience matching (name + address)
// and the self-reported demographics used for stratification and, for race,
// as measurement ground truth.
type Record struct {
	ID        string // state voter ID
	FirstName string
	LastName  string
	Address   string // street address
	City      string
	State     demo.State
	ZIP       string
	Gender    demo.Gender
	Race      demo.Race
	BirthYear int
}

// Age returns the voter's age in the study year.
func (r *Record) Age() int { return StudyYear - r.BirthYear }

// AgeBucket returns the Facebook reporting bucket the voter falls into.
func (r *Record) AgeBucket() demo.AgeBucket { return demo.BucketForAge(r.Age()) }

// Validate performs basic integrity checks on a parsed record.
func (r *Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("voter: record missing ID")
	}
	if r.State != demo.StateFL && r.State != demo.StateNC {
		return fmt.Errorf("voter %s: state %v is not a study state", r.ID, r.State)
	}
	if age := r.Age(); age < 18 || age > 120 {
		return fmt.Errorf("voter %s: implausible age %d", r.ID, age)
	}
	if len(r.ZIP) != 5 {
		return fmt.Errorf("voter %s: malformed ZIP %q", r.ID, r.ZIP)
	}
	return nil
}

// Registry is a set of voter records from one state together with the ZIP-
// level poverty rates used in the Appendix A analysis.
type Registry struct {
	State   demo.State
	Records []Record
	// ZIPPoverty maps ZIP code to the fraction of the ZIP's residents below
	// the poverty line (the proxy Appendix A uses for economic status).
	ZIPPoverty map[string]float64
}

// Cell identifies one stratification cell: the intersection of age bucket,
// gender, and race within which Table 1 requires equal counts.
type Cell struct {
	Age    demo.AgeBucket
	Gender demo.Gender
	Race   demo.Race
}

// String formats the cell for diagnostics.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Age, c.Gender, c.Race)
}

// CellCounts tallies records per stratification cell.
func CellCounts(records []Record) map[Cell]int {
	out := map[Cell]int{}
	for i := range records {
		r := &records[i]
		out[Cell{Age: r.AgeBucket(), Gender: r.Gender, Race: r.Race}]++
	}
	return out
}

// StudyCells enumerates the 6 age buckets × 2 genders × 2 races = 24 cells
// the balanced audiences are stratified over.
func StudyCells() []Cell {
	var out []Cell
	for _, a := range demo.AllAgeBuckets() {
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for _, r := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				out = append(out, Cell{Age: a, Gender: g, Race: r})
			}
		}
	}
	return out
}
