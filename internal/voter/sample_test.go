package voter

import (
	"math"
	"math/rand"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/stats"
)

func TestPovertyStatsBlackHigherBeforeMatching(t *testing.T) {
	reg := testRegistry(t, demo.StateFL, 40000)
	rng := rand.New(rand.NewSource(10))
	sample := StratifiedSample(reg.Records, 0, rng)
	mw, mb := PovertyStats(reg, sample)
	if math.IsNaN(mw) || math.IsNaN(mb) {
		t.Fatal("NaN medians")
	}
	if mb <= mw {
		t.Errorf("median poverty: black %v <= white %v; expected the Appendix A gap", mb, mw)
	}
}

func TestMatchPovertyEqualizesDistributions(t *testing.T) {
	reg := testRegistry(t, demo.StateFL, 40000)
	rng := rand.New(rand.NewSource(11))
	sample := StratifiedSample(reg.Records, 0, rng)
	matched := MatchPoverty(reg, sample, 10, rng)
	if len(matched) == 0 {
		t.Fatal("empty matched sample")
	}
	if len(matched) >= len(sample) {
		t.Errorf("matching should shrink the sample: %d >= %d", len(matched), len(sample))
	}
	// Balance must be preserved.
	if err := VerifyBalance(matched); err != nil {
		t.Fatal(err)
	}
	// After matching, the white/black poverty means should be statistically
	// indistinguishable.
	var w, b []float64
	for i := range matched {
		r := &matched[i]
		p := reg.ZIPPoverty[r.ZIP]
		switch r.Race {
		case demo.RaceWhite:
			w = append(w, p)
		case demo.RaceBlack:
			b = append(b, p)
		}
	}
	res := stats.WelchTTest(w, b)
	if res.P < 0.01 {
		t.Errorf("post-matching poverty still differs: Δ=%v p=%v", res.DeltaM, res.P)
	}
	// Pre-matching, the difference should be clearly significant (sanity
	// check that matching actually did something).
	var w0, b0 []float64
	for i := range sample {
		r := &sample[i]
		p := reg.ZIPPoverty[r.ZIP]
		switch r.Race {
		case demo.RaceWhite:
			w0 = append(w0, p)
		case demo.RaceBlack:
			b0 = append(b0, p)
		}
	}
	pre := stats.WelchTTest(w0, b0)
	if pre.P > 0.01 {
		t.Errorf("pre-matching poverty not significantly different (p=%v); generator correlation too weak", pre.P)
	}
}

func TestMatchPovertyMinBins(t *testing.T) {
	reg := testRegistry(t, demo.StateNC, 10000)
	rng := rand.New(rand.NewSource(12))
	sample := StratifiedSample(reg.Records, 100, rng)
	// nBins below 2 is clamped, not an error.
	matched := MatchPoverty(reg, sample, 1, rng)
	if err := VerifyBalance(matched); err != nil {
		t.Fatal(err)
	}
}

func TestPovertyOfUnknownZIPDefault(t *testing.T) {
	reg := &Registry{State: demo.StateFL, ZIPPoverty: map[string]float64{}}
	r := Record{ZIP: "99999"}
	if p := povertyOf(reg, &r); p != 0.12 {
		t.Errorf("default poverty = %v", p)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if !math.IsNaN(median(nil)) {
		t.Error("empty median: want NaN")
	}
}
