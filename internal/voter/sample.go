package voter

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/adaudit/impliedidentity/internal/demo"
)

// StratifiedSample selects voters from a registry such that, within each age
// bucket, every gender×race cell contributes exactly the same number of
// records (§3.2: "we select voters such that the number of men and women is
// equal, as is the number of Black and white voters, and as are the
// intersections of race and gender"). The per-bucket group size is the size
// of the rarest cell, optionally capped by maxPerCell (0 = uncapped).
// Sampling within a cell is uniform without replacement and deterministic in
// rng.
func StratifiedSample(records []Record, maxPerCell int, rng *rand.Rand) []Record {
	byCell := map[Cell][]int{}
	for i := range records {
		r := &records[i]
		if r.Race != demo.RaceWhite && r.Race != demo.RaceBlack {
			continue // the audit only balances the two measured race groups
		}
		if r.Gender == demo.GenderUnknown {
			continue
		}
		c := Cell{Age: r.AgeBucket(), Gender: r.Gender, Race: r.Race}
		byCell[c] = append(byCell[c], i)
	}
	var out []Record
	for _, bucket := range demo.AllAgeBuckets() {
		k := math.MaxInt
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for _, rc := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				n := len(byCell[Cell{Age: bucket, Gender: g, Race: rc}])
				if n < k {
					k = n
				}
			}
		}
		if k == math.MaxInt || k == 0 {
			continue
		}
		if maxPerCell > 0 && k > maxPerCell {
			k = maxPerCell
		}
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for _, rc := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				idx := byCell[Cell{Age: bucket, Gender: g, Race: rc}]
				for _, j := range rng.Perm(len(idx))[:k] {
					out = append(out, records[idx[j]])
				}
			}
		}
	}
	return out
}

// Table1Row is one row of the paper's Table 1: the per-cell group size and
// the total target-audience size within an age range.
type Table1Row struct {
	Age       demo.AgeBucket
	GroupSize int // voters per race×gender cell
	Total     int // total audience in the age range
}

// Table1 summarizes a stratified sample the way the paper's Table 1 does.
// It returns one row per age bucket present in the sample.
func Table1(sample []Record) []Table1Row {
	counts := CellCounts(sample)
	var rows []Table1Row
	for _, bucket := range demo.AllAgeBuckets() {
		var total, group int
		first := true
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for _, rc := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				n := counts[Cell{Age: bucket, Gender: g, Race: rc}]
				total += n
				if first {
					group = n
					first = false
				}
			}
		}
		if total > 0 {
			rows = append(rows, Table1Row{Age: bucket, GroupSize: group, Total: total})
		}
	}
	return rows
}

// VerifyBalance checks the Table 1 invariant: within every age bucket all
// four gender×race cells have identical counts.
func VerifyBalance(sample []Record) error {
	counts := CellCounts(sample)
	for _, bucket := range demo.AllAgeBuckets() {
		want := -1
		for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
			for _, rc := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
				n := counts[Cell{Age: bucket, Gender: g, Race: rc}]
				if want == -1 {
					want = n
				} else if n != want {
					return fmt.Errorf("voter: bucket %s unbalanced: cell %s/%s has %d, want %d",
						bucket, g, rc, n, want)
				}
			}
		}
	}
	return nil
}

// povertyOf returns the ZIP-level poverty rate for a record, defaulting to
// the statewide median proxy when the ZIP is unknown.
func povertyOf(reg *Registry, r *Record) float64 {
	if p, ok := reg.ZIPPoverty[r.ZIP]; ok {
		return p
	}
	return 0.12
}

// PovertyStats reports the median ZIP-poverty per race group in a sample,
// the quantities Appendix A cites ("half of the white people we targeted
// lived in ZIP codes with poverty at 12% or below, and half of the Black
// people lived in ZIP codes with poverty at 16% or below").
func PovertyStats(reg *Registry, sample []Record) (medianWhite, medianBlack float64) {
	var w, b []float64
	for i := range sample {
		r := &sample[i]
		p := povertyOf(reg, r)
		switch r.Race {
		case demo.RaceWhite:
			w = append(w, p)
		case demo.RaceBlack:
			b = append(b, p)
		}
	}
	return median(w), median(b)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MatchPoverty subsamples a stratified sample so the ZIP-poverty
// distribution is identical across every race×gender cell (Appendix A). It
// bins poverty into nBins quantile bins computed over the whole sample, then
// keeps min-cell-count records per (age bucket, bin) from each race×gender
// cell. The result remains stratification-balanced.
func MatchPoverty(reg *Registry, sample []Record, nBins int, rng *rand.Rand) []Record {
	if nBins < 2 {
		nBins = 2
	}
	// Quantile bin edges over the pooled poverty values.
	pooled := make([]float64, len(sample))
	for i := range sample {
		pooled[i] = povertyOf(reg, &sample[i])
	}
	sort.Float64s(pooled)
	edges := make([]float64, nBins-1)
	for b := 1; b < nBins; b++ {
		edges[b-1] = pooled[len(pooled)*b/nBins]
	}
	binOf := func(p float64) int {
		for b, e := range edges {
			if p < e {
				return b
			}
		}
		return nBins - 1
	}

	type stratum struct {
		age demo.AgeBucket
		bin int
	}
	byStratumCell := map[stratum]map[Cell][]int{}
	for i := range sample {
		r := &sample[i]
		s := stratum{age: r.AgeBucket(), bin: binOf(povertyOf(reg, r))}
		c := Cell{Age: r.AgeBucket(), Gender: r.Gender, Race: r.Race}
		if byStratumCell[s] == nil {
			byStratumCell[s] = map[Cell][]int{}
		}
		byStratumCell[s][c] = append(byStratumCell[s][c], i)
	}

	var out []Record
	// Deterministic iteration order: age buckets then bins.
	for _, bucket := range demo.AllAgeBuckets() {
		for bin := 0; bin < nBins; bin++ {
			cells := byStratumCell[stratum{age: bucket, bin: bin}]
			if cells == nil {
				continue
			}
			k := math.MaxInt
			for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
				for _, rc := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
					n := len(cells[Cell{Age: bucket, Gender: g, Race: rc}])
					if n < k {
						k = n
					}
				}
			}
			if k == math.MaxInt || k == 0 {
				continue
			}
			for _, g := range []demo.Gender{demo.GenderMale, demo.GenderFemale} {
				for _, rc := range []demo.Race{demo.RaceWhite, demo.RaceBlack} {
					idx := cells[Cell{Age: bucket, Gender: g, Race: rc}]
					for _, j := range rng.Perm(len(idx))[:k] {
						out = append(out, sample[idx[j]])
					}
				}
			}
		}
	}
	return out
}
