package voter

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/adaudit/impliedidentity/internal/demo"
)

func TestFLRoundTrip(t *testing.T) {
	reg := testRegistry(t, demo.StateFL, 200)
	var buf bytes.Buffer
	if err := WriteFL(&buf, reg.Records); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reg.Records) {
		t.Fatalf("parsed %d, want %d", len(got), len(reg.Records))
	}
	for i, want := range reg.Records {
		if got[i] != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestNCRoundTrip(t *testing.T) {
	reg := testRegistry(t, demo.StateNC, 200)
	var buf bytes.Buffer
	if err := WriteNC(&buf, reg.Records); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reg.Records) {
		t.Fatalf("parsed %d, want %d", len(got), len(reg.Records))
	}
	for i, want := range reg.Records {
		if got[i] != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestWriteFLRejectsWrongState(t *testing.T) {
	rec := Record{ID: "NC1", State: demo.StateNC, ZIP: "27000", BirthYear: 1980}
	if err := WriteFL(&bytes.Buffer{}, []Record{rec}); err == nil {
		t.Error("NC record in FL writer: want error")
	}
	rec.State = demo.StateFL
	if err := WriteNC(&bytes.Buffer{}, []Record{rec}); err == nil {
		t.Error("FL record in NC writer: want error")
	}
}

func TestParseFLMalformed(t *testing.T) {
	cases := []string{
		"too\tfew\tfields\n",
		"DAD\tFL1\tSmith\t\tJohn\t\t1 Oak St\tMiami\tFL\t33101\tM\tnotanumber\t01/01/1980\n",
		"DAD\tFL1\tSmith\t\tJohn\t\t1 Oak St\tMiami\tFL\t33101\tM\t5\t1980\n",       // short birth date
		"DAD\tFL1\tSmith\t\tJohn\t\t1 Oak St\tMiami\tFL\t33101\tX\t5\t01/01/1980\n", // bad gender
	}
	for i, c := range cases {
		if _, err := ParseFL(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want parse error", i)
		}
	}
	// Blank lines are tolerated.
	recs, err := ParseFL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank-only input: %v, %d records", err, len(recs))
	}
}

func TestParseFLUnknownRaceCode(t *testing.T) {
	line := "DAD\tFL1\tSmith\t\tJohn\t\t1 Oak St\tMiami\tFL\t33101\tM\t4\t01/01/1980\n"
	recs, err := ParseFL(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Race != demo.RaceOther {
		t.Errorf("race code 4 should map to other, got %v", recs[0].Race)
	}
}

func TestParseNCMalformed(t *testing.T) {
	if _, err := ParseNC(strings.NewReader("")); err == nil {
		t.Error("empty file: want error")
	}
	if _, err := ParseNC(strings.NewReader("wrong header\n")); err == nil {
		t.Error("bad header: want error")
	}
	bad := ncHeader + "\n92\tNC1\tSmith\n"
	if _, err := ParseNC(strings.NewReader(bad)); err == nil {
		t.Error("short row: want error")
	}
	badYear := ncHeader + "\n92\tNC1\tSmith\tJohn\t1 Oak St\tRaleigh\tNC\t27000\tW\tM\tnope\n"
	if _, err := ParseNC(strings.NewReader(badYear)); err == nil {
		t.Error("bad year: want error")
	}
}

func TestLayoutRoundTripProperty(t *testing.T) {
	// Property: any generated registry round-trips through its state's
	// extract format unchanged.
	f := func(seed int64) bool {
		state := demo.StateFL
		write, parse := WriteFL, ParseFL
		if seed%2 == 0 {
			state = demo.StateNC
			write, parse = WriteNC, ParseNC
		}
		cfg := DefaultGeneratorConfig(state, seed)
		cfg.NumVoters = 40
		reg, err := Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := write(&buf, reg.Records); err != nil {
			return false
		}
		got, err := parse(&buf)
		if err != nil || len(got) != len(reg.Records) {
			return false
		}
		for i := range got {
			if got[i] != reg.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
