package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/loadgen"
	"github.com/adaudit/impliedidentity/internal/obs"
)

// TestSelfHostedSmokeRun is the end-to-end check the CI smoke job repeats: a
// fixed-seed self-hosted run must complete without errors, print the latency
// table, and write a report whose client-side counts match the server-side
// /metrics counters embedded in it.
func TestSelfHostedSmokeRun(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	var buf strings.Builder
	err := run([]string{
		"-scenarios", "4", "-concurrency", "2", "-ads", "1", "-audience", "100",
		"-seed", "7", "-voters", "4000", "-logrows", "1500", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("smoke run: %v\noutput:\n%s", err, buf.String())
	}
	stdout := buf.String()
	for _, want := range []string{"Operation", "create_ad", "deliver", "insights", "req/s", "wrote " + out} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := loadgen.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 7 || rep.ScenariosCompleted != 4 || rep.ScenariosFailed != 0 || rep.Errors != 0 {
		t.Fatalf("report header: %+v", rep)
	}
	// Deterministic workload: 4 audiences + 4 campaigns + 4 ads + 4
	// delivers + 4×1×2 insights polls.
	wantOps := map[string]int64{
		loadgen.OpCreateAudience: 4,
		loadgen.OpCreateCampaign: 4,
		loadgen.OpCreateAd:       4,
		loadgen.OpDeliver:        4,
		loadgen.OpInsights:       8,
	}
	for op, n := range wantOps {
		got := rep.Operations[op]
		if got.Requests != n || got.Errors != 0 {
			t.Errorf("%s: %+v, want %d requests", op, got, n)
		}
		if got.Latency.Count != n || got.Latency.P50Ms < 0 || got.Latency.P99Ms < got.Latency.P50Ms {
			t.Errorf("%s latency: %+v", op, got.Latency)
		}
	}
	if rep.ServerMetrics == nil {
		t.Fatal("report should embed the server /metrics snapshot")
	}
	serverTotal := rep.ServerMetrics.Counters[obs.MetricRequests]
	// The scrape itself is not counted (GET /metrics is uninstrumented), so
	// server-side total equals the client's request count exactly.
	if serverTotal != rep.Requests {
		t.Errorf("server counted %d requests, client sent %d", serverTotal, rep.Requests)
	}
	if rep.ServerMetrics.Counters[obs.MetricRequests+"|POST /v1/ads"] != wantOps[loadgen.OpCreateAd] {
		t.Errorf("server POST /v1/ads counter: %d", rep.ServerMetrics.Counters[obs.MetricRequests+"|POST /v1/ads"])
	}
}

// TestChaosSmokeRun mirrors the CI chaos job: a fault-injected self-hosted
// run with a fixed schedule seed must complete with zero surfaced errors —
// the retry layer absorbs every injected fault — and report the injection
// and retry counts.
func TestChaosSmokeRun(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "chaos.json")
	var buf strings.Builder
	err := run([]string{
		"-scenarios", "4", "-concurrency", "2", "-ads", "1", "-audience", "100",
		"-seed", "7", "-voters", "4000", "-logrows", "1500",
		"-fault-rate", "0.2", "-fault-seed", "42", "-fault-kinds", "all",
		"-retries", "8", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("chaos run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "injecting faults") {
		t.Errorf("stdout should announce fault injection:\n%s", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := loadgen.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.ScenariosFailed != 0 {
		t.Fatalf("chaos run surfaced %d errors, %d failed scenarios", rep.Errors, rep.ScenariosFailed)
	}
	if rep.FaultsInjected == 0 {
		t.Error("report shows no injected faults; the chaos flags did nothing")
	}
	if !strings.Contains(buf.String(), "resilience") {
		t.Errorf("summary should include the resilience line:\n%s", buf.String())
	}
}

func TestFaultFlagsRequireSelfHost(t *testing.T) {
	for _, args := range [][]string{
		{"-target", "http://127.0.0.1:1", "-voterfile", "x", "-fault-rate", "0.2"},
		{"-target", "http://127.0.0.1:1", "-voterfile", "x", "-fault-seed", "9"},
		{"-target", "http://127.0.0.1:1", "-voterfile", "x", "-fault-kinds", "drop"},
		{"-target", "http://127.0.0.1:1", "-voterfile", "x", "-shed-cap", "10"},
	} {
		var buf strings.Builder
		err := run(args, &buf)
		if err == nil || !strings.Contains(err.Error(), "-target") {
			t.Errorf("args %v: want self-host conflict error, got %v", args, err)
		}
	}
}

func TestExternalTargetRequiresVoterFile(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-target", "http://127.0.0.1:1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-voterfile") {
		t.Errorf("want -voterfile error, got %v", err)
	}
}

func TestBadFlagsFailFast(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenarios", "many"}, &buf); err == nil {
		t.Error("bad flag value: want error")
	}
	if err := run([]string{"-mode", "bursty", "-voters", "4000", "-logrows", "1500"}, &buf); err == nil {
		t.Error("unknown mode: want error")
	}
}
