// Command adload generates concurrent advertiser traffic against the
// marketing API and reports serving latency and throughput. It either
// targets a running adplatform server over TCP or self-hosts an in-process
// one, runs virtual-advertiser scenarios (upload audience → create campaign
// → create ads → deliver → poll insights) in closed-loop or open-loop mode,
// prints a human summary table, and optionally writes the machine-readable
// JSON report future perf PRs compare against.
//
// Self-hosted smoke run (deterministic workload under a fixed seed):
//
//	adload -scenarios 6 -concurrency 3 -seed 1 -out BENCH_serving_v1.json
//
// Against a running server (hashes come from the voter extract the server
// wrote with -voterdir):
//
//	adplatform -addr 127.0.0.1:8399 -voterdir /tmp/voters &
//	adload -target http://127.0.0.1:8399 -voterfile /tmp/voters/fl_voter_extract.txt \
//	       -mode open -rps 10 -scenarios 50
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/loadgen"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/report"
	"github.com/adaudit/impliedidentity/internal/store"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("adload", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running adplatform server; empty self-hosts one in-process")
	voterFile := fs.String("voterfile", "", "FL-layout voter extract to derive audience PII hashes from (required with -target)")
	mode := fs.String("mode", "closed", "driving discipline: closed (fixed concurrency) or open (Poisson arrivals)")
	concurrency := fs.Int("concurrency", 4, "closed-loop worker count")
	rps := fs.Float64("rps", 4, "open-loop scenario arrival rate per second")
	scenarios := fs.Int("scenarios", 8, "virtual advertisers to run")
	ads := fs.Int("ads", 2, "ads per campaign")
	audience := fs.Int("audience", 200, "PII hashes per audience upload")
	polls := fs.Int("polls", 2, "insights polls per delivered ad")
	seed := fs.Int64("seed", 1, "workload seed (and world seed when self-hosting)")
	duration := fs.Duration("duration", 0, "wall-clock cap on the run; 0 = run all scenarios")
	throttle := fs.Duration("throttle", 0, "client-side minimum interval between requests; 0 disables")
	retries := fs.Int("retries", 0, "client max attempts per API call (0 = library default)")
	out := fs.String("out", "", "path to write the JSON report (BENCH_serving schema)")
	voters := fs.Int("voters", 8000, "self-hosted world: voters in the registry")
	logRows := fs.Int("logrows", 3000, "self-hosted world: engagement-log rows for eAR training")
	faultRate := fs.Float64("fault-rate", 0, "self-hosted chaos: probability a request draws an injected fault (0 disables)")
	faultSeed := fs.Int64("fault-seed", 1, "self-hosted chaos: fault-schedule seed (same seed, same schedule)")
	faultKinds := fs.String("fault-kinds", "all", "self-hosted chaos: comma-separated fault kinds (latency,429,5xx,drop,slow) or all")
	shedCap := fs.Int("shed-cap", marketing.DefaultServerLimits().MaxInFlight, "self-hosted server: max in-flight requests before shedding with 429 (0 disables)")
	storeDir := fs.String("store-dir", "", "self-hosted server: durable state directory (empty serves from memory only)")
	fsyncMode := fs.String("fsync", "always", "self-hosted server: WAL fsync discipline (always, interval, none); requires -store-dir")
	deliveryWorkers := fs.Int("delivery-workers", 0, "delivery shard count sent with every deliver call (0 = server default, 1 = sequential oracle)")
	privacyK := fs.Int("privacy-k", 0, "insights privacy: k-anonymity threshold on the self-hosted server (0 disables); with -target, records the remote policy in the report")
	privacyEpsilon := fs.Float64("privacy-epsilon", 0, "insights privacy: DP noise epsilon on the self-hosted server (0 disables); with -target, records the remote policy in the report")
	privacySeed := fs.Int64("privacy-seed", 1, "insights privacy: noise-stream seed for the self-hosted server")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *target != "" {
		// Faults are injected into the self-hosted server's handler chain;
		// against a remote server these flags would silently do nothing.
		// (-privacy-k/-privacy-epsilon stay legal with -target: they record
		// the remote policy in the report; the seed is server-side only.)
		for _, f := range []string{"fault-rate", "fault-seed", "fault-kinds", "shed-cap", "store-dir", "fsync", "privacy-seed"} {
			if flagWasSet(fs, f) {
				return fmt.Errorf("-%s applies to the self-hosted server and cannot be combined with -target", f)
			}
		}
	}
	kinds, err := faults.ParseKinds(*faultKinds)
	if err != nil {
		return err
	}
	fsync, err := store.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	privCfg, err := privacy.FromFlags(*privacyK, *privacyEpsilon, *privacySeed)
	if err != nil {
		return err
	}

	baseURL := *target
	var hashes []string
	if *target == "" {
		fmt.Fprintf(stdout, "self-hosting a platform (%d voters, seed %d)...\n", *voters, *seed)
		if *faultRate > 0 {
			fmt.Fprintf(stdout, "injecting faults: rate %.2f, seed %d, kinds %v\n", *faultRate, *faultSeed, kinds)
		}
		if *storeDir != "" {
			fmt.Fprintf(stdout, "durable store at %s (fsync=%s)\n", *storeDir, fsync)
		}
		if privCfg.Enabled() {
			fmt.Fprintf(stdout, "insights privacy armed: level %s, k=%d, epsilon=%v\n",
				privCfg.Level, privCfg.K, privCfg.Epsilon)
		}
		ts, pool, closeStore, err := selfHost(*seed, *voters, *logRows, *shedCap, faults.Config{
			Seed:  *faultSeed,
			Rate:  *faultRate,
			Kinds: kinds,
		}, *storeDir, fsync, privCfg)
		if err != nil {
			return err
		}
		defer closeStore()
		defer ts.Close()
		baseURL = ts.URL
		hashes = pool
	} else {
		if *voterFile == "" {
			return fmt.Errorf("targeting %s requires -voterfile to build audiences (run adplatform with -voterdir)", *target)
		}
		pool, err := hashesFromExtract(*voterFile)
		if err != nil {
			return err
		}
		hashes = pool
	}

	client, err := marketing.NewClient(baseURL)
	if err != nil {
		return err
	}
	if *throttle > 0 {
		client.SetMinInterval(*throttle)
	}
	if *retries > 0 {
		pol := marketing.DefaultRetryPolicy()
		pol.MaxAttempts = *retries
		client.SetRetryPolicy(pol)
	}
	// A router target answers GET /v1/topology; a single adplatform 404s it.
	// Recording the shard count keeps multi-process bench reports
	// distinguishable from single-process ones.
	shardCount := probeTopology(baseURL)
	if shardCount > 0 {
		fmt.Fprintf(stdout, "target is a router over %d shard(s)\n", shardCount)
	}
	runner, err := loadgen.New(loadgen.Config{
		Seed:            *seed,
		Mode:            loadgen.Mode(*mode),
		Workers:         *concurrency,
		ArrivalRPS:      *rps,
		Scenarios:       *scenarios,
		AdsPerCampaign:  *ads,
		AudienceSize:    *audience,
		InsightsPolls:   *polls,
		Hashes:          hashes,
		DeliveryWorkers: *deliveryWorkers,
		ShardCount:      shardCount,
		Privacy:         privCfg,
	}, client)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	fmt.Fprintf(stdout, "running %d scenarios (%s mode) against %s...\n", *scenarios, *mode, baseURL)
	rep, runErr := runner.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.DeadlineExceeded) {
		return runErr
	}
	if errors.Is(runErr, context.DeadlineExceeded) {
		fmt.Fprintf(stdout, "duration cap hit after %v: %d of %d scenarios completed\n",
			*duration, rep.ScenariosCompleted, *scenarios)
	}

	if snap, err := fetchMetrics(baseURL); err == nil {
		rep.ServerMetrics = snap
		rep.RequestsShed = snap.Counters[obs.MetricRequestsShed]
		rep.FaultsInjected = snap.Counters[faults.MetricInjected]
	} else {
		fmt.Fprintf(stdout, "warning: could not scrape %s/metrics: %v\n", baseURL, err)
	}

	fmt.Fprint(stdout, summarize(rep))
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

// flagWasSet reports whether the user passed the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// selfHost builds the synthetic world and serves the marketing API from an
// in-process listener (wrapped in the fault injector when faultCfg.Rate > 0),
// returning the server, the audience hash pool, and a store closer (a no-op
// when storeDir is empty).
func selfHost(seed int64, numVoters, logRows, shedCap int, faultCfg faults.Config, storeDir string, fsync store.FsyncMode, privCfg privacy.Config) (*httptest.Server, []string, func(), error) {
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, seed+1)
	flCfg.NumVoters = numVoters
	fl, err := voter.Generate(flCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	pop, err := population.Build(population.Config{Seed: seed + 3}, fl)
	if err != nil {
		return nil, nil, nil, err
	}
	behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := platform.DefaultConfig(seed + 4)
	cfg.Training.LogRows = logRows
	// Disable the (default 1%) ad-review rejection so the request counts of
	// a fixed-seed run are exactly reproducible, which the benchmark report
	// relies on. Review strictness has its own coverage in internal/platform.
	cfg.ReviewRejectProb = 0
	plat, err := platform.New(cfg, pop, behave)
	if err != nil {
		return nil, nil, nil, err
	}
	limits := marketing.DefaultServerLimits()
	limits.MaxInFlight = shedCap
	reg := obs.NewRegistry()
	// Delivery-phase metrics share the registry the /metrics scrape reads.
	plat.SetObserver(reg, nil)
	serverOpts := []marketing.ServerOption{marketing.WithLimits(limits), marketing.WithRegistry(reg)}
	if privCfg.Enabled() {
		serverOpts = append(serverOpts, marketing.WithPrivacy(privCfg))
	}
	closeStore := func() {}
	if storeDir != "" {
		st, err := store.Open(store.Options{Dir: storeDir, Fsync: fsync, Metrics: reg})
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := st.Recover(plat); err != nil {
			return nil, nil, nil, err
		}
		serverOpts = append(serverOpts, marketing.WithPersister(st))
		closeStore = func() {
			if _, err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "adload: closing store: %v\n", err)
			}
		}
	}
	srv, err := marketing.NewServer(plat, serverOpts...)
	if err != nil {
		closeStore()
		return nil, nil, nil, err
	}
	handler := srv.Handler()
	if faultCfg.Rate > 0 {
		// Register fault counters in the server's own registry so the
		// end-of-run /metrics scrape reports them next to the serving stats.
		inj, err := faults.New(faultCfg, srv.Metrics())
		if err != nil {
			closeStore()
			return nil, nil, nil, err
		}
		handler = inj.Middleware(handler)
	}
	return httptest.NewServer(handler), hashesFromRecords(fl.Records), closeStore, nil
}

// hashesFromExtract derives the audience hash pool from an FL-layout voter
// extract, the same client-side hashing path the audit tooling uses.
func hashesFromExtract(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := voter.ParseFL(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return hashesFromRecords(records), nil
}

func hashesFromRecords(records []voter.Record) []string {
	hashes := make([]string, 0, len(records))
	for i := range records {
		r := &records[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}
	return hashes
}

// probeTopology asks the target whether it is a router (GET /v1/topology)
// and returns its shard count; 0 means a single-process target (or an
// unreachable one — the load run itself will surface that).
func probeTopology(baseURL string) int {
	httpClient := &http.Client{Timeout: 5 * time.Second}
	resp, err := httpClient.Get(baseURL + "/v1/topology")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var topo struct {
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return 0
	}
	return topo.Shards
}

// fetchMetrics scrapes the target's GET /metrics endpoint.
func fetchMetrics(baseURL string) (*obs.Snapshot, error) {
	httpClient := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpClient.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// summarize renders the human-readable result: the per-operation latency
// table plus, when available, the server-side per-endpoint view.
func summarize(rep *loadgen.Report) string {
	title := fmt.Sprintf("Serving load test — %s mode, seed %d, %d/%d scenarios",
		rep.Mode, rep.Seed, rep.ScenariosCompleted, rep.Scenarios)
	rows := make([]report.ServingRow, 0, len(rep.Operations))
	for _, op := range loadgen.Ops {
		o, ok := rep.Operations[op]
		if !ok {
			continue
		}
		rows = append(rows, report.ServingRow{
			Op:       op,
			Requests: o.Requests,
			Errors:   o.Errors,
			P50Ms:    o.Latency.P50Ms,
			P90Ms:    o.Latency.P90Ms,
			P99Ms:    o.Latency.P99Ms,
			MaxMs:    o.Latency.MaxMs,
		})
	}
	out := report.ServingSummary(title, rows, rep.WallSeconds, rep.ThroughputRPS, rep.Errors,
		report.ServingResilience{
			Retries:        rep.Retries,
			BreakerRejects: rep.BreakerRejects,
			RequestsShed:   rep.RequestsShed,
			FaultsInjected: rep.FaultsInjected,
		})
	if rep.ServerMetrics != nil {
		out += fmt.Sprintf("server: %d requests counted, %d in flight at scrape\n",
			rep.ServerMetrics.Counters[obs.MetricRequests],
			rep.ServerMetrics.Gauges[obs.MetricInFlight])
	}
	return out
}
