// Command adpopbench records and checks BENCH_population_v1.json — the
// committed benchmark artifact for the columnar population engine.
//
// Default mode builds seeded worlds at 100k, 1M, and 10M users via the
// streaming generator and measures, per scale: generation throughput
// (users/sec), retained bytes/user (Population.MemoryBytes), and one full
// delivery day's throughput over a fixed-size custom audience. At the
// smallest scale it also materializes the legacy per-user struct layout
// (struct + hex key + map entry) to measure the bytes/user the columnar
// refactor replaced.
//
//	go run ./cmd/adpopbench -out BENCH_population_v1.json
//
// Smoke mode (`-smoke -baseline BENCH_population_v1.json`) is the CI gate:
// it rebuilds the 100k world, runs one delivery day at workers 1 and 4, and
// fails if either delivery digest diverges from the committed artifact or
// generation throughput regressed by more than 2x. The digest check is the
// cheap end-to-end determinism proof — any change to RNG draw order anywhere
// in generation, matching, or delivery shows up as a digest flip here.
//
//	go run ./cmd/adpopbench -smoke -baseline BENCH_population_v1.json
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

// Seeds are fixed so the artifact is reproducible and the smoke digests are
// stable across recordings: only hardware-dependent numbers (seconds,
// users/sec) may differ between hosts.
const (
	seedGenFL    = 31001
	seedGenNC    = 31002
	seedPop      = 31003
	seedPlatform = 31004
	seedRun      = 31500

	streamChunk    = 65536
	audienceTarget = 40000
	dayWorkers     = 1
)

type scaleDef struct {
	name           string
	votersPerState int
}

// votersPerState ≈ targetUsers / (2 states × ~0.64 effective match rate),
// padded so each scale lands at or just above its nominal user count.
var scales = []scaleDef{
	{"100k", 78_500},
	{"1m", 785_000},
	{"10m", 7_850_000},
}

type dayResult struct {
	AudienceUsers   int     `json:"audience_users"`
	Ticks           int     `json:"ticks"`
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	UserTicksPerSec float64 `json:"user_ticks_per_sec"`
	Impressions     int64   `json:"impressions"`
	Digest          string  `json:"digest"`
}

type scaleResult struct {
	Name         string     `json:"name"`
	Voters       int        `json:"voters"`
	Users        int        `json:"users"`
	BuildSeconds float64    `json:"build_seconds"`
	UsersPerSec  float64    `json:"users_per_sec"`
	BytesPerUser int64      `json:"bytes_per_user"`
	Day          *dayResult `json:"day"`
}

type smokeSection struct {
	Scale       string  `json:"scale"`
	Users       int     `json:"users"`
	DigestW1    string  `json:"digest_w1"`
	DigestW4    string  `json:"digest_w4"`
	UsersPerSec float64 `json:"users_per_sec"`
}

type benchFile struct {
	Schema  string `json:"schema"`
	Date    string `json:"date"`
	Command string `json:"command"`
	Host    struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Layout struct {
		ColumnarBudgetBytesPerUser int64   `json:"columnar_budget_bytes_per_user"`
		LegacyBytesPerUserMeasured int64   `json:"legacy_bytes_per_user_measured"`
		ReductionX                 float64 `json:"reduction_x"`
	} `json:"layout"`
	Scales []scaleResult `json:"scales"`
	Smoke  smokeSection  `json:"smoke"`
	Notes  []string      `json:"notes"`
}

func main() {
	out := flag.String("out", "", "write the benchmark JSON to this path (default: stdout)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: check the 100k world against -baseline")
	baseline := flag.String("baseline", "BENCH_population_v1.json", "committed artifact to compare against in -smoke mode")
	scaleList := flag.String("scales", "100k,1m,10m", "comma-separated subset of scales to record")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "adpopbench: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("adpopbench: smoke OK")
		return
	}
	if err := record(*out, *scaleList); err != nil {
		fmt.Fprintln(os.Stderr, "adpopbench:", err)
		os.Exit(1)
	}
}

func generatorConfigs(votersPerState int) []voter.GeneratorConfig {
	fl := voter.DefaultGeneratorConfig(demo.StateFL, seedGenFL)
	fl.NumVoters = votersPerState
	nc := voter.DefaultGeneratorConfig(demo.StateNC, seedGenNC)
	nc.NumVoters = votersPerState
	return []voter.GeneratorConfig{fl, nc}
}

// buildScale streams the population for one scale and fills the generation
// metrics.
func buildScale(sc scaleDef) (*population.Population, scaleResult, error) {
	res := scaleResult{Name: sc.name, Voters: 2 * sc.votersPerState}
	start := time.Now()
	pop, err := population.Stream(population.Config{Seed: seedPop}, streamChunk, generatorConfigs(sc.votersPerState)...)
	if err != nil {
		return nil, res, err
	}
	res.BuildSeconds = time.Since(start).Seconds()
	res.Users = pop.Len()
	res.UsersPerSec = float64(pop.Len()) / res.BuildSeconds
	res.BytesPerUser = pop.MemoryBytes() / int64(pop.Len())
	return pop, res, nil
}

// newDayPlatform builds a delivery platform over pop with a custom audience
// drawn from every k-th user's PII key (k chosen so the audience is the same
// size at every scale, keeping day throughput comparable).
func newDayPlatform(pop *population.Population) (*platform.Platform, string, int, error) {
	behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
	if err != nil {
		return nil, "", 0, err
	}
	cfg := platform.DefaultConfig(seedPlatform)
	cfg.Training.LogRows = 12000
	cfg.ReviewRejectProb = 0
	p, err := platform.New(cfg, pop, behave)
	if err != nil {
		return nil, "", 0, err
	}
	stride := pop.Len() / audienceTarget
	if stride < 1 {
		stride = 1
	}
	hashes := make([]string, 0, audienceTarget)
	for i := 0; i < pop.Len() && len(hashes) < audienceTarget; i += stride {
		hashes = append(hashes, pop.View(i).PIIKey())
	}
	ca, err := p.CreateCustomAudience("popbench", hashes)
	if err != nil {
		return nil, "", 0, err
	}
	return p, ca.ID, cfg.Ticks, nil
}

// adSet mirrors the delivery bench's four-profile Traffic campaign: budgets
// far above the market ceiling so pacing, not exhaustion, shapes delivery.
func adSet(p *platform.Platform, caID string) ([]string, error) {
	cmp, err := p.CreateCampaign("popbench", platform.ObjectiveTraffic, platform.SpecialNone, 2019)
	if err != nil {
		return nil, err
	}
	targeting := platform.Targeting{CustomAudienceIDs: []string{caID}}
	ids := make([]string, 0, 4)
	for _, prof := range []demo.Profile{
		{Gender: demo.GenderMale, Race: demo.RaceWhite, Age: demo.ImpliedAdult},
		{Gender: demo.GenderMale, Race: demo.RaceBlack, Age: demo.ImpliedAdult},
		{Gender: demo.GenderFemale, Race: demo.RaceWhite, Age: demo.ImpliedAdult},
		{Gender: demo.GenderFemale, Race: demo.RaceBlack, Age: demo.ImpliedAdult},
	} {
		creative := platform.Creative{Image: image.FromProfile(prof), Headline: "h", LinkURL: "https://example.com"}
		ad, err := p.CreateAd(cmp.ID, creative, targeting, 2_000_000)
		if err != nil {
			return nil, err
		}
		ids = append(ids, ad.ID)
	}
	return ids, nil
}

// deliveryDigest is the same canonicalization as the delivery bench's digest
// metric (ad IDs normalized to creation order, map cells sorted), but keeps
// the full SHA-256 hex instead of folding to 32 bits.
func deliveryDigest(p *platform.Platform, ids []string) (string, int64, error) {
	h := sha256.New()
	var impressions int64
	for i, id := range ids {
		st, err := p.Insights(id)
		if err != nil {
			return "", 0, err
		}
		impressions += int64(st.Impressions)
		fmt.Fprintf(h, "ad#%d|%d|%d|%d|%.6f|%v|", i, st.Impressions, st.Reach, st.Clicks, st.SpendCents, st.HourlySeries)
		cells := make([]platform.BreakdownKey, 0, len(st.Breakdown))
		for k := range st.Breakdown {
			cells = append(cells, k)
		}
		sort.Slice(cells, func(a, c int) bool {
			ka, kc := cells[a], cells[c]
			if ka.Age != kc.Age {
				return ka.Age < kc.Age
			}
			if ka.Gender != kc.Gender {
				return ka.Gender < kc.Gender
			}
			return ka.Region < kc.Region
		})
		for _, k := range cells {
			fmt.Fprintf(h, "%d/%d/%d=%d|", k.Age, k.Gender, k.Region, st.Breakdown[k])
		}
		races := make([]demo.Race, 0, len(st.RaceOracle))
		for r := range st.RaceOracle {
			races = append(races, r)
		}
		sort.Slice(races, func(a, c int) bool { return races[a] < races[c] })
		for _, r := range races {
			fmt.Fprintf(h, "r%d=%d|", r, st.RaceOracle[r])
		}
	}
	return hex.EncodeToString(h.Sum(nil)), impressions, nil
}

// runDay creates a fresh ad set and runs one full delivery day, returning
// throughput and the canonical digest.
func runDay(p *platform.Platform, caID string, ticks, workers int) (*dayResult, error) {
	ids, err := adSet(p, caID)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := p.RunDayWorkers(ids, seedRun, workers); err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	digest, impressions, err := deliveryDigest(p, ids)
	if err != nil {
		return nil, err
	}
	return &dayResult{
		AudienceUsers:   audienceTarget,
		Ticks:           ticks,
		Workers:         workers,
		Seconds:         elapsed,
		UserTicksPerSec: float64(audienceTarget*ticks) / elapsed,
		Impressions:     impressions,
		Digest:          digest,
	}, nil
}

// legacyMeasureUser is the pre-columnar per-user representation, rebuilt
// from views purely to measure what it retained per user: an 80-byte struct,
// a 64-byte heap-allocated hex key, and a map entry.
type legacyMeasureUser struct {
	ID         int
	State      demo.State
	ZIP        string
	Age        int
	Gender     demo.Gender
	Race       demo.Race
	Activity   float64
	PIIKey     string
	TravelProb float64
}

func measureLegacyBytesPerUser(pop *population.Population) int64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	n := pop.Len()
	users := make([]legacyMeasureUser, 0, n)
	byPII := make(map[string]int, n)
	for i := 0; i < n; i++ {
		v := pop.View(i)
		u := legacyMeasureUser{
			ID: i, State: v.State(), ZIP: v.ZIP(), Age: v.Age(),
			Gender: v.Gender(), Race: v.Race(), Activity: v.Activity(),
			PIIKey: v.PIIKey(), TravelProb: v.TravelProb(),
		}
		byPII[u.PIIKey] = i
		users = append(users, u)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perUser := (int64(after.HeapAlloc) - int64(before.HeapAlloc)) / int64(n)
	runtime.KeepAlive(users)
	runtime.KeepAlive(byPII)
	return perUser
}

func record(outPath, scaleList string) error {
	want := map[string]bool{}
	for _, s := range strings.Split(scaleList, ",") {
		want[strings.TrimSpace(s)] = true
	}

	var bf benchFile
	bf.Schema = "adaudit/bench-population/v1"
	bf.Date = time.Now().UTC().Format("2006-01-02")
	bf.Command = "go run ./cmd/adpopbench -out BENCH_population_v1.json"
	bf.Host.GOOS = runtime.GOOS
	bf.Host.GOARCH = runtime.GOARCH
	bf.Host.NumCPU = runtime.NumCPU()
	bf.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	bf.Host.GoVersion = runtime.Version()
	bf.Layout.ColumnarBudgetBytesPerUser = 64

	for _, sc := range scales {
		if !want[sc.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "== scale %s: streaming %d voters\n", sc.name, 2*sc.votersPerState)
		pop, res, err := buildScale(sc)
		if err != nil {
			return fmt.Errorf("scale %s: %w", sc.name, err)
		}
		fmt.Fprintf(os.Stderr, "   %d users in %.1fs (%.0f users/sec, %d B/user)\n",
			res.Users, res.BuildSeconds, res.UsersPerSec, res.BytesPerUser)

		if bf.Layout.LegacyBytesPerUserMeasured == 0 {
			bf.Layout.LegacyBytesPerUserMeasured = measureLegacyBytesPerUser(pop)
			bf.Layout.ReductionX = float64(bf.Layout.LegacyBytesPerUserMeasured) / float64(res.BytesPerUser)
			fmt.Fprintf(os.Stderr, "   legacy layout: %d B/user (%.1fx reduction)\n",
				bf.Layout.LegacyBytesPerUserMeasured, bf.Layout.ReductionX)
		}

		p, caID, ticks, err := newDayPlatform(pop)
		if err != nil {
			return fmt.Errorf("scale %s platform: %w", sc.name, err)
		}
		day, err := runDay(p, caID, ticks, dayWorkers)
		if err != nil {
			return fmt.Errorf("scale %s day: %w", sc.name, err)
		}
		res.Day = day
		fmt.Fprintf(os.Stderr, "   day: %.1fs, %.0f user-ticks/sec, digest %s\n",
			day.Seconds, day.UserTicksPerSec, day.Digest[:16])
		bf.Scales = append(bf.Scales, res)

		// The smallest recorded scale doubles as the CI smoke reference:
		// digests at workers 1 and 4 plus the generation throughput floor.
		if bf.Smoke.Scale == "" {
			day4, err := runDay(p, caID, ticks, 4)
			if err != nil {
				return fmt.Errorf("scale %s day workers=4: %w", sc.name, err)
			}
			bf.Smoke = smokeSection{
				Scale:       sc.name,
				Users:       res.Users,
				DigestW1:    day.Digest,
				DigestW4:    day4.Digest,
				UsersPerSec: res.UsersPerSec,
			}
		}
	}

	bf.Notes = []string{
		"Seeds fixed (gen 31001/31002, pop 31003, platform 31004, run 31500): digests must be identical across hosts and recordings; only seconds/users_per_sec are hardware-dependent.",
		"Day throughput uses a fixed 40k-user custom audience at every scale so the per-scale day rows isolate population size effects (PII match + view reads), not auction count.",
		"legacy_bytes_per_user_measured materializes the pre-columnar struct+hexkey+map layout from the same population; reduction_x = legacy / columnar bytes per user.",
		"The smoke section is checked by `adpopbench -smoke` in CI: digest divergence at workers 1 or 4, or a >2x users_per_sec regression, fails the build.",
	}

	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func runSmoke(baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	if base.Smoke.Scale == "" {
		return fmt.Errorf("%s has no smoke section", baselinePath)
	}
	var sc *scaleDef
	for i := range scales {
		if scales[i].name == base.Smoke.Scale {
			sc = &scales[i]
		}
	}
	if sc == nil {
		return fmt.Errorf("unknown smoke scale %q", base.Smoke.Scale)
	}

	pop, res, err := buildScale(*sc)
	if err != nil {
		return err
	}
	if res.Users != base.Smoke.Users {
		return fmt.Errorf("population size %d, committed %d — generation determinism broken", res.Users, base.Smoke.Users)
	}
	fmt.Printf("smoke: %d users at %.0f users/sec (committed %.0f)\n", res.Users, res.UsersPerSec, base.Smoke.UsersPerSec)
	if res.UsersPerSec*2 < base.Smoke.UsersPerSec {
		return fmt.Errorf("generation throughput %.0f users/sec is <half the committed %.0f", res.UsersPerSec, base.Smoke.UsersPerSec)
	}

	p, caID, ticks, err := newDayPlatform(pop)
	if err != nil {
		return err
	}
	for _, chk := range []struct {
		workers int
		want    string
	}{{1, base.Smoke.DigestW1}, {4, base.Smoke.DigestW4}} {
		day, err := runDay(p, caID, ticks, chk.workers)
		if err != nil {
			return err
		}
		if day.Digest != chk.want {
			return fmt.Errorf("workers=%d delivery digest diverged from committed artifact:\n got %s\nwant %s", chk.workers, day.Digest, chk.want)
		}
		fmt.Printf("smoke: workers=%d digest %s… matches committed artifact\n", chk.workers, day.Digest[:16])
	}
	return nil
}
