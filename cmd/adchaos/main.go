// Command adchaos is the deterministic chaos soak for the multi-process
// serving tier. It runs the same seeded workload against two real 2-shard
// (configurable) fleets of adplatform child processes:
//
//   - Fleet A is DISTURBED: a chaos orchestrator walks a pure (seed, tick)
//     schedule of kill / SIGSTOP-pause / slow / partition against the shard
//     children while the in-process fleet supervisor detects, quarantines,
//     relaunches, and rejoins them (WAL recovery + journal catch-up +
//     cross-shard digest gate).
//   - Fleet B is UNDISTURBED: it replays exactly the operations fleet A
//     acknowledged, in order.
//
// The soak passes iff the two fleets end byte-identical on the full
// wire-level insights surface — every kill, pause, partition, resurrection,
// and journal replay in between may not change a single byte, and no
// acknowledged write may be lost. It writes a machine-readable benchmark
// (MTTR percentiles, journal replay latency, CRUD availability during
// degradation) to -out.
//
// Usage:
//
//	go build -o bin/adplatform ./cmd/adplatform
//	go run ./cmd/adchaos -shard-bin bin/adplatform -out BENCH_chaos_v1.json
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/adaudit/impliedidentity/internal/chaos"
	"github.com/adaudit/impliedidentity/internal/coordinator"
	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/image"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/supervisor"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adchaos:", err)
		os.Exit(1)
	}
}

type options struct {
	shardBin    string
	shards      int
	seed        int64
	voters      int
	logRows     int
	chaosSeed   int64
	rate        float64
	actions     []chaos.Action
	ticks       int
	tickLen     time.Duration
	minGap      int
	dayEvery    int
	daySeedBase int64
	workDir     string
	out         string
	basePort    int
	bootTimeout time.Duration
	healTimeout time.Duration
}

func run(args []string) error {
	fs := flag.NewFlagSet("adchaos", flag.ContinueOnError)
	shardBin := fs.String("shard-bin", "", "path to the adplatform binary to spawn as shard children (required)")
	shards := fs.Int("shards", 2, "fleet width")
	seed := fs.Int64("seed", 7, "world seed (every child builds the same world from it)")
	voters := fs.Int("voters", 4000, "voters per state in the child worlds")
	logRows := fs.Int("logrows", 1500, "engagement-log rows for child eAR training")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos schedule seed (same seed, same disturbances)")
	rate := fs.Float64("rate", 0.6, "disturbance probability per eligible tick")
	actionsFlag := fs.String("actions", "all", "eligible disturbances (kill,pause,slow,partition) or all")
	ticks := fs.Int("ticks", 24, "chaos/workload ticks (one CRUD op per tick)")
	tickLen := fs.Duration("tick", 750*time.Millisecond, "tick cadence")
	minGap := fs.Int("min-gap", 4, "only every min-gap-th tick may disturb")
	dayEvery := fs.Int("day-every", 8, "run a delivery day every N ticks")
	daySeedBase := fs.Int64("day-seed", 9900, "delivery seed of day k is day-seed + k")
	workDir := fs.String("workdir", "", "working directory for WALs and child logs (default: a temp dir)")
	out := fs.String("out", "BENCH_chaos_v1.json", "benchmark output path")
	basePort := fs.Int("base-port", 8460, "first shard child port (fleet B uses base-port+100)")
	bootTimeout := fs.Duration("boot-timeout", 4*time.Minute, "budget for a fleet's children to build their world and answer /healthz")
	healTimeout := fs.Duration("heal-timeout", 90*time.Second, "budget for the disturbed fleet to heal after the chaos window closes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardBin == "" {
		return fmt.Errorf("-shard-bin is required (build ./cmd/adplatform first)")
	}
	actions, err := chaos.ParseActions(*actionsFlag)
	if err != nil {
		return err
	}
	opts := options{
		shardBin: *shardBin, shards: *shards, seed: *seed, voters: *voters, logRows: *logRows,
		chaosSeed: *chaosSeed, rate: *rate, actions: actions, ticks: *ticks, tickLen: *tickLen,
		minGap: *minGap, dayEvery: *dayEvery, daySeedBase: *daySeedBase,
		workDir: *workDir, out: *out, basePort: *basePort,
		bootTimeout: *bootTimeout, healTimeout: *healTimeout,
	}
	if opts.workDir == "" {
		dir, err := os.MkdirTemp("", "adchaos-")
		if err != nil {
			return err
		}
		opts.workDir = dir
	}
	fmt.Printf("workdir: %s\n", opts.workDir)
	return soak(opts)
}

// op is one acknowledged operation of the disturbed fleet's workload — the
// replay unit for the undisturbed fleet.
type op struct {
	Kind  string   `json:"kind"` // "audience", "campaign", "ad", "day"
	Tick  int      `json:"tick"`
	Seed  int64    `json:"seed,omitempty"`   // day delivery seed
	ID    string   `json:"id,omitempty"`     // acked object ID (asserted on replay)
	AdIDs []string `json:"ad_ids,omitempty"` // ads a committed day delivered
}

type benchReport struct {
	Bench  string `json:"bench"`
	Date   string `json:"date"`
	Config struct {
		Shards    int     `json:"shards"`
		WorldSeed int64   `json:"world_seed"`
		ChaosSeed int64   `json:"chaos_seed"`
		Rate      float64 `json:"rate"`
		Ticks     int     `json:"ticks"`
		TickMs    int64   `json:"tick_ms"`
		MinGap    int     `json:"min_gap"`
	} `json:"config"`
	Events       []chaos.Event  `json:"events"`
	EventsByKind map[string]int `json:"events_by_kind"`
	CRUD         struct {
		Attempted           int     `json:"attempted"`
		Acked               int     `json:"acked"`
		AvailabilityPct     float64 `json:"availability_pct"`
		DegradedAttempted   int     `json:"degraded_attempted"`
		DegradedAcked       int     `json:"degraded_acked"`
		DegradedAvailPct    float64 `json:"degraded_availability_pct"`
		FullOutageAttempted int     `json:"full_outage_attempted"`
	} `json:"crud"`
	Days struct {
		Committed int `json:"committed"`
		Skipped   int `json:"skipped"`
		Retries   int `json:"retries"`
	} `json:"days"`
	MTTRMs struct {
		Count int64   `json:"count"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
		Max   float64 `json:"max"`
	} `json:"mttr_ms"`
	Journal struct {
		Appends     int64   `json:"appends"`
		Replayed    int64   `json:"replayed"`
		Skipped     int64   `json:"skipped"`
		Rejects     int64   `json:"rejects"`
		ReplayP50Ms float64 `json:"replay_p50_ms"`
		ReplayMaxMs float64 `json:"replay_max_ms"`
	} `json:"journal"`
	Relaunches int64 `json:"relaunches"`
	Rejoins    int64 `json:"rejoins"`
	Digest     struct {
		Disturbed   string `json:"disturbed"`
		Undisturbed string `json:"undisturbed"`
		Identical   bool   `json:"identical"`
	} `json:"digest"`
}

func soak(opts options) error {
	// The audience hash pool: regenerate the FL registry exactly as every
	// child does (same seed arithmetic as cmd/adplatform), hash client-side.
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, opts.seed+1)
	flCfg.NumVoters = opts.voters
	fl, err := voter.Generate(flCfg)
	if err != nil {
		return err
	}
	hashes := make([]string, 0, 600)
	for i := range fl.Records {
		if i >= 600 {
			break
		}
		r := &fl.Records[i]
		hashes = append(hashes, population.HashPII(r.FirstName, r.LastName, r.Address, r.ZIP))
	}

	report := &benchReport{Bench: "chaos_v1", Date: time.Now().UTC().Format(time.RFC3339)}
	report.Config.Shards = opts.shards
	report.Config.WorldSeed = opts.seed
	report.Config.ChaosSeed = opts.chaosSeed
	report.Config.Rate = opts.rate
	report.Config.Ticks = opts.ticks
	report.Config.TickMs = opts.tickLen.Milliseconds()
	report.Config.MinGap = opts.minGap

	fmt.Printf("=== fleet A (disturbed): %d shards, chaos seed %d, rate %.2f over %d ticks ===\n",
		opts.shards, opts.chaosSeed, opts.rate, opts.ticks)
	oplog, digestA, err := runDisturbed(opts, hashes, report)
	if err != nil {
		return fmt.Errorf("disturbed fleet: %w", err)
	}

	fmt.Printf("=== fleet B (undisturbed): replaying %d acked ops ===\n", len(oplog))
	digestB, err := runUndisturbed(opts, hashes, oplog)
	if err != nil {
		return fmt.Errorf("undisturbed fleet: %w", err)
	}

	report.Digest.Disturbed = digestA
	report.Digest.Undisturbed = digestB
	report.Digest.Identical = digestA == digestB
	if err := writeReport(opts.out, report); err != nil {
		return err
	}
	fmt.Printf("benchmark written to %s\n", opts.out)
	if !report.Digest.Identical {
		return fmt.Errorf("DIVERGENCE: disturbed fleet digest %s != undisturbed %s", digestA, digestB)
	}
	fmt.Printf("chaos soak OK: digest %s identical across %d disturbances (MTTR p50 %.0fms, p99 %.0fms)\n",
		digestA, len(report.Events), report.MTTRMs.P50, report.MTTRMs.P99)
	return nil
}

// fleet is one running fleet: real shard children behind an in-process
// coordinator + router serving real HTTP.
type fleet struct {
	rel     *supervisor.ProcessRelauncher
	gate    *faults.Gate
	hosts   []string
	coord   *coordinator.Coordinator
	client  *marketing.Client
	reg     *obs.Registry
	httpSrv *http.Server
	ln      net.Listener
}

func startFleet(opts options, tag string, firstPort int, durable bool) (*fleet, error) {
	dir := filepath.Join(opts.workDir, tag)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	hosts := make([]string, opts.shards)
	backends := make([]string, opts.shards)
	argv := make([][]string, opts.shards)
	logs := make([]string, opts.shards)
	for i := 0; i < opts.shards; i++ {
		hosts[i] = "127.0.0.1:" + strconv.Itoa(firstPort+i)
		backends[i] = "http://" + hosts[i]
		// -review-reject 0: the review RNG must not be consulted, or a
		// journal-replayed create could draw a different verdict than the
		// original (the cursor advanced differently on the recovered shard).
		argv[i] = []string{
			opts.shardBin, "-addr", hosts[i],
			"-seed", strconv.FormatInt(opts.seed, 10),
			"-voters", strconv.Itoa(opts.voters),
			"-logrows", strconv.Itoa(opts.logRows),
			"-review-reject", "0",
			"-delivery-workers", "1",
		}
		if durable {
			argv[i] = append(argv[i],
				"-store-dir", filepath.Join(dir, "state"+strconv.Itoa(i)),
				"-fsync", "always", "-snapshot-every", "50")
		}
		logs[i] = filepath.Join(dir, "shard"+strconv.Itoa(i)+".log")
	}
	rel, err := supervisor.NewProcessRelauncher(argv, logs)
	if err != nil {
		return nil, err
	}
	for i := range argv {
		if err := rel.Start(i); err != nil {
			rel.StopAll()
			return nil, err
		}
	}
	if err := waitHealthy(backends, opts.bootTimeout); err != nil {
		rel.StopAll()
		return nil, err
	}

	gate := faults.NewGate()
	reg := obs.NewRegistry()
	coord, err := coordinator.New(coordinator.Config{
		Backends:    backends,
		DayAttempts: 8,
		DayBackoff:  300 * time.Millisecond,
		JournalCap:  512,
		Transport:   faults.NewTransport(nil, nil, gate),
	}, reg)
	if err != nil {
		rel.StopAll()
		return nil, err
	}
	coord.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 400 * time.Millisecond})
	router, err := coordinator.NewRouter(coord, reg)
	if err != nil {
		rel.StopAll()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rel.StopAll()
		return nil, err
	}
	httpSrv := &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	client, err := marketing.NewClient("http://" + ln.Addr().String())
	if err != nil {
		rel.StopAll()
		return nil, err
	}
	// Generous client retries: a single-shard outage surfaces as transient
	// 503s until the quarantine lands; the workload must ride through them.
	client.SetRetryPolicy(marketing.RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: 600 * time.Millisecond})
	fmt.Printf("[%s] fleet up: router http://%s, shards %v\n", tag, ln.Addr(), hosts)
	return &fleet{rel: rel, gate: gate, hosts: hosts, coord: coord, client: client, reg: reg, httpSrv: httpSrv, ln: ln}, nil
}

func (f *fleet) stop() {
	_ = f.httpSrv.Close()
	f.rel.StopAll()
}

func waitHealthy(backends []string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	probe := &http.Client{Timeout: 2 * time.Second}
	for _, b := range backends {
		for {
			resp, err := probe.Get(b + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("backend %s not healthy within %s", b, budget)
			}
			time.Sleep(250 * time.Millisecond)
		}
	}
	return nil
}

// procTarget adapts real process signals + the client-side gate to the chaos
// Target seam. Signal errors on an already-dead child are swallowed: the
// schedule is blind to relaunch timing by design, so "kill a corpse" and
// "pause a corpse" are no-ops, not failures.
type procTarget struct {
	rel   *supervisor.ProcessRelauncher
	gate  *faults.Gate
	hosts []string
	slow  time.Duration
}

func (t *procTarget) Kill(shard int) error {
	if err := t.rel.Signal(shard, supervisor.SigKill); err != nil {
		fmt.Printf("  (kill shard %d: %v)\n", shard, err)
	}
	return nil
}

func (t *procTarget) Pause(shard int) error {
	if err := t.rel.Signal(shard, supervisor.SigStop); err != nil {
		fmt.Printf("  (pause shard %d: %v)\n", shard, err)
	}
	return nil
}

func (t *procTarget) Resume(shard int) error {
	if err := t.rel.Signal(shard, supervisor.SigCont); err != nil {
		fmt.Printf("  (resume shard %d: %v)\n", shard, err)
	}
	return nil
}

func (t *procTarget) SetSlow(shard int, on bool) {
	d := time.Duration(0)
	if on {
		d = t.slow
	}
	t.gate.SetSlow(t.hosts[shard], d)
}

func (t *procTarget) SetPartition(shard int, on bool) {
	t.gate.SetPartition(t.hosts[shard], on)
}

func runDisturbed(opts options, hashes []string, report *benchReport) ([]op, string, error) {
	fl, err := startFleet(opts, "disturbed", opts.basePort, true)
	if err != nil {
		return nil, "", err
	}
	defer fl.stop()

	sup := supervisor.New(fl.coord, fl.rel, supervisor.Config{
		ProbeInterval:   250 * time.Millisecond,
		ProbeTimeout:    750 * time.Millisecond,
		RelaunchAfter:   2 * time.Second,
		RelaunchBackoff: 2 * time.Second,
		Logf: func(format string, args ...any) {
			fmt.Printf("[sup] "+format+"\n", args...)
		},
	}, fl.reg)
	sup.Start(context.Background())
	defer sup.Stop()

	sched, err := chaos.NewSchedule(chaos.Config{
		Seed: opts.chaosSeed, Shards: opts.shards, Rate: opts.rate,
		Actions: opts.actions, MinGap: opts.minGap,
	})
	if err != nil {
		return nil, "", err
	}
	orch := chaos.NewOrchestrator(sched, &procTarget{rel: fl.rel, gate: fl.gate, hosts: fl.hosts, slow: 150 * time.Millisecond}, nil)

	ctx := context.Background()
	w := &workload{client: fl.client, hashes: hashes, daySeedBase: opts.daySeedBase}
	if err := w.setup(ctx); err != nil {
		return nil, "", fmt.Errorf("workload setup: %w", err)
	}

	for tick := 0; tick < opts.ticks; tick++ {
		if ev, err := orch.Step(tick); err != nil {
			return nil, "", err
		} else if ev != nil {
			fmt.Printf("[chaos] tick %d: %s shard %d (window %d)\n", ev.Tick, ev.Action, ev.Shard, ev.Ticks)
		}
		degraded, full := fleetDegradation(fl.coord)
		report.CRUD.Attempted++
		if degraded {
			report.CRUD.DegradedAttempted++
		}
		if full {
			report.CRUD.FullOutageAttempted++
		}
		if o, err := w.tickOp(ctx, tick); err != nil {
			fmt.Printf("[crud] tick %d: %v\n", tick, err)
		} else {
			report.CRUD.Acked++
			if degraded {
				report.CRUD.DegradedAcked++
			}
			w.oplog = append(w.oplog, o)
		}
		if (tick+1)%opts.dayEvery == 0 {
			if err := w.day(ctx, tick); err != nil {
				fmt.Printf("[day] tick %d: skipped: %v\n", tick, err)
				report.Days.Skipped++
			} else {
				report.Days.Committed++
			}
		}
		time.Sleep(opts.tickLen)
	}
	if err := orch.Quiesce(); err != nil {
		return nil, "", err
	}
	report.Events = orch.Events()
	report.EventsByKind = map[string]int{}
	for _, e := range report.Events {
		report.EventsByKind[string(e.Action)]++
	}

	// Heal: every shard must come back healthy before the verification day.
	fmt.Printf("[heal] chaos window closed after %d events; waiting for the fleet to heal...\n", len(report.Events))
	healDeadline := time.Now().Add(opts.healTimeout)
	for {
		if allHealthy(fl.coord) {
			break
		}
		if time.Now().After(healDeadline) {
			dumpDivergence(opts.workDir, fl.hosts)
			return nil, "", fmt.Errorf("fleet did not heal within %s (states %v)", opts.healTimeout, fl.coord.Health().States())
		}
		time.Sleep(250 * time.Millisecond)
	}
	fmt.Printf("[heal] fleet healthy\n")

	// Verification day on the healed fleet — this one must commit. Delivery
	// is one-shot per ad, so make sure the day has an auction to run: if
	// every acked ad was already consumed by a mid-chaos day, create one
	// more (oplogged, so the undisturbed fleet mirrors it).
	if len(w.undelivered) == 0 {
		vt := opts.ticks
		if vt%10 == 9 {
			vt++ // that slot would create a campaign, not an ad
		}
		o, err := w.tickOp(ctx, vt)
		if err != nil {
			return nil, "", fmt.Errorf("verification ad on healed fleet: %w", err)
		}
		w.oplog = append(w.oplog, o)
	}
	if err := w.day(ctx, opts.ticks); err != nil {
		return nil, "", fmt.Errorf("verification day on healed fleet: %w", err)
	}
	report.Days.Committed++

	inv, err := fl.coord.Inventory(ctx)
	if err != nil {
		return nil, "", fmt.Errorf("healed-fleet inventory: %w", err)
	}
	if got, want := inv.Ads, w.created["ad"]; got != want {
		return nil, "", fmt.Errorf("acked write lost: healed fleet holds %d ads, %d were acked", got, want)
	}

	digest, err := insightsDigest(ctx, fl.client, w.adIDs)
	if err != nil {
		return nil, "", err
	}

	snap := fl.reg.Snapshot()
	mttr := snap.Histograms[supervisor.MetricMTTR]
	report.MTTRMs.Count = mttr.Count
	report.MTTRMs.P50 = mttr.P50Ms
	report.MTTRMs.P99 = mttr.P99Ms
	report.MTTRMs.Max = mttr.MaxMs
	replay := snap.Histograms[coordinator.MetricJournalReplayLatency]
	report.Journal.Appends = snap.Counters[coordinator.MetricJournalAppends]
	report.Journal.Replayed = snap.Counters[coordinator.MetricJournalReplayed]
	report.Journal.Skipped = snap.Counters[coordinator.MetricJournalSkipped]
	report.Journal.Rejects = snap.Counters[coordinator.MetricJournalRejects]
	report.Journal.ReplayP50Ms = replay.P50Ms
	report.Journal.ReplayMaxMs = replay.MaxMs
	report.Relaunches = snap.Counters[supervisor.MetricRelaunches]
	report.Rejoins = snap.Counters[coordinator.MetricRejoins]
	report.Days.Retries = int(snap.Counters[coordinator.MetricDayRetries])
	if report.CRUD.Attempted > 0 {
		report.CRUD.AvailabilityPct = 100 * float64(report.CRUD.Acked) / float64(report.CRUD.Attempted)
	}
	if report.CRUD.DegradedAttempted > 0 {
		report.CRUD.DegradedAvailPct = 100 * float64(report.CRUD.DegradedAcked) / float64(report.CRUD.DegradedAttempted)
	}
	return w.oplog, digest, nil
}

func runUndisturbed(opts options, hashes []string, oplog []op) (string, error) {
	fl, err := startFleet(opts, "undisturbed", opts.basePort+100, false)
	if err != nil {
		return "", err
	}
	defer fl.stop()

	ctx := context.Background()
	w := &workload{client: fl.client, hashes: hashes, daySeedBase: opts.daySeedBase}
	if err := w.setup(ctx); err != nil {
		return "", fmt.Errorf("workload setup: %w", err)
	}
	for i, o := range oplog {
		switch o.Kind {
		case "day":
			if err := w.replayDay(ctx, o); err != nil {
				return "", fmt.Errorf("replay op %d (day seed %d): %w", i, o.Seed, err)
			}
		default:
			got, err := w.tickOp(ctx, o.Tick)
			if err != nil {
				return "", fmt.Errorf("replay op %d (tick %d): %w", i, o.Tick, err)
			}
			if got.ID != o.ID {
				return "", fmt.Errorf("replay op %d: ID %s, disturbed fleet acked %s — allocation histories diverged", i, got.ID, o.ID)
			}
		}
	}
	// The disturbed fleet's post-heal verification day is in the oplog too,
	// so by here the replay has run every committed day. Digest the full
	// insights surface.
	return insightsDigest(ctx, fl.client, w.adIDs)
}

// workload issues the deterministic op sequence: everything is a pure
// function of the tick, so the undisturbed fleet can replay exactly the
// subset the disturbed fleet acknowledged.
type workload struct {
	client      *marketing.Client
	hashes      []string
	daySeedBase int64

	audienceID string
	campaignID string
	adIDs      []string
	// undelivered holds ads not yet consumed by a committed day: delivery
	// is one-shot (a delivered ad is COMPLETED, its insights frozen), so
	// each day runs over exactly the ads created since the last commit.
	undelivered []string
	days        int
	created     map[string]int
	oplog       []op
}

func (w *workload) setup(ctx context.Context) error {
	w.created = map[string]int{}
	ca, err := w.client.CreateAudience(ctx, "soak-aud", w.hashes)
	if err != nil {
		return err
	}
	if ca.MatchedSize == 0 {
		return fmt.Errorf("audience matched no users")
	}
	cmp, err := w.client.CreateCampaign(ctx, marketing.CreateCampaignRequest{Name: "soak-cmp", Objective: "TRAFFIC"})
	if err != nil {
		return err
	}
	w.audienceID, w.campaignID = ca.ID, cmp.ID
	// Two seed ads so the very first delivery day has an auction to run.
	// Setup ops are NOT oplogged: both fleets run setup structurally, so
	// logging them here would replay them twice on the undisturbed side.
	for i := 0; i < 2; i++ {
		if _, err := w.tickOp(ctx, -2+i); err != nil {
			return err
		}
	}
	return nil
}

// tickOp performs the CRUD op for a tick. Every 10th tick creates a campaign;
// the rest create an ad with a deterministic per-tick spec.
func (w *workload) tickOp(ctx context.Context, tick int) (op, error) {
	if tick >= 0 && tick%10 == 9 {
		cmp, err := w.client.CreateCampaign(ctx, marketing.CreateCampaignRequest{
			Name:      fmt.Sprintf("soak-cmp-%03d", tick),
			Objective: "TRAFFIC",
		})
		if err != nil {
			return op{}, err
		}
		w.created["campaign"]++
		return op{Kind: "campaign", Tick: tick, ID: cmp.ID}, nil
	}
	genders := []demo.Gender{demo.GenderFemale, demo.GenderMale}
	races := []demo.Race{demo.RaceBlack, demo.RaceWhite}
	n := tick + 2 // setup ads are ticks -2 and -1
	img := image.FromProfile(demo.Profile{
		Gender: genders[n%2],
		Race:   races[(n/2)%2],
		Age:    demo.ImpliedAdult,
	})
	ad, err := w.client.CreateAd(ctx, marketing.CreateAdRequest{
		CampaignID: w.campaignID,
		Creative: marketing.WireCreative{
			Image:    marketing.WireImageFrom(img),
			Headline: fmt.Sprintf("soak-ad-%03d", n),
			LinkURL:  "https://example.test/offer",
		},
		Targeting:        marketing.WireTargeting{CustomAudienceIDs: []string{w.audienceID}},
		DailyBudgetCents: 150 + 25*(n%6),
	})
	if err != nil {
		return op{}, err
	}
	if ad.Status != "ACTIVE" {
		return op{}, fmt.Errorf("ad %s status %q, want ACTIVE", ad.ID, ad.Status)
	}
	w.created["ad"]++
	w.adIDs = append(w.adIDs, ad.ID)
	w.undelivered = append(w.undelivered, ad.ID)
	return op{Kind: "ad", Tick: tick, ID: ad.ID}, nil
}

// day runs the next delivery day over the undelivered ads and records it —
// including the exact ad set — in the oplog on commit.
func (w *workload) day(ctx context.Context, tick int) error {
	if len(w.undelivered) == 0 {
		return fmt.Errorf("no undelivered ads for the day at tick %d", tick)
	}
	seed := w.daySeedBase + int64(w.days)
	ids := append([]string(nil), w.undelivered...)
	if err := w.client.Deliver(ctx, ids, seed); err != nil {
		return err
	}
	w.days++
	w.undelivered = nil
	w.oplog = append(w.oplog, op{Kind: "day", Tick: tick, Seed: seed, AdIDs: ids})
	fmt.Printf("[day] seed %d committed over %d ads\n", seed, len(ids))
	return nil
}

// replayDay replays a committed day (undisturbed fleet) over the recorded
// ad set, and retires those ads from the undelivered pool so the mirrored
// verification day runs over the same remainder.
func (w *workload) replayDay(ctx context.Context, o op) error {
	if err := w.client.Deliver(ctx, o.AdIDs, o.Seed); err != nil {
		return err
	}
	w.days++
	delivered := make(map[string]bool, len(o.AdIDs))
	for _, id := range o.AdIDs {
		delivered[id] = true
	}
	kept := w.undelivered[:0]
	for _, id := range w.undelivered {
		if !delivered[id] {
			kept = append(kept, id)
		}
	}
	w.undelivered = kept
	return nil
}

func fleetDegradation(c *coordinator.Coordinator) (degraded, fullOutage bool) {
	states := c.Health().States()
	unhealthy := 0
	for _, s := range states {
		if s != supervisor.Healthy {
			unhealthy++
		}
	}
	return unhealthy > 0 && unhealthy < len(states), unhealthy == len(states)
}

// dumpDivergence saves every shard's full serialized state (/debug/state —
// the exact bytes the rejoin digest hashes) into the workdir, so a stuck
// digest gate can be diagnosed by diffing the dumps. Best-effort: a shard
// that will not answer simply leaves no file.
func dumpDivergence(workDir string, hosts []string) {
	for i, h := range hosts {
		resp, err := http.Get("http://" + h + "/debug/state")
		if err != nil {
			continue
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close() //adlint:allow walerr (best-effort diagnostic dump)
		if err != nil {
			continue
		}
		path := filepath.Join(workDir, fmt.Sprintf("diverge-shard%d.json", i))
		if os.WriteFile(path, body, 0o644) == nil {
			fmt.Printf("[heal] shard %d state dumped to %s\n", i, path)
		}
	}
}

func allHealthy(c *coordinator.Coordinator) bool {
	for _, s := range c.Health().States() {
		if s != supervisor.Healthy {
			return false
		}
	}
	return true
}

// insightsDigest hashes the full wire-level delivery report of every ad
// (plain insights + the age×gender×region breakdown), ad IDs normalized to
// their index — the same digest the coordinator e2e tests assert on.
func insightsDigest(ctx context.Context, client *marketing.Client, ids []string) (string, error) {
	type adReport struct {
		Full  *marketing.InsightsResponse `json:"full"`
		Cells *marketing.InsightsResponse `json:"cells"`
	}
	reports := make([]adReport, 0, len(ids))
	for i, id := range ids {
		full, err := client.Insights(ctx, id)
		if err != nil {
			return "", err
		}
		cells, err := client.InsightsBreakdown(ctx, id, "age", "gender", "region")
		if err != nil {
			return "", err
		}
		full.AdID = fmt.Sprintf("ad#%d", i)
		cells.AdID = full.AdID
		reports = append(reports, adReport{Full: full, Cells: cells})
	}
	b, err := json.Marshal(reports)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

func writeReport(path string, report *benchReport) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
