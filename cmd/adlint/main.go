// Command adlint runs the project's custom static-analysis suite over Go
// packages and prints vet-style diagnostics.
//
// Usage:
//
//	go run ./cmd/adlint [-only detrand,walerr] [-list] [packages]
//
// With no package arguments it analyzes ./... from the current directory.
// The process exits 1 when any diagnostic is reported and 2 on usage or
// load errors, mirroring go vet. Findings are suppressed per-line with
// //adlint:allow annotations; see the adlint package documentation for the
// grammar and the invariant each analyzer enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/adaudit/impliedidentity/internal/analysis/adlint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: adlint [-only names] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range adlint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := adlint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adlint:", err)
		os.Exit(2)
	}

	pkgs, err := adlint.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adlint:", err)
		os.Exit(2)
	}

	diags := adlint.Run(pkgs, analyzers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !filepath.IsAbs(rel) {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "adlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
