// Command adlint runs the project's custom static-analysis suite over Go
// packages and prints vet-style diagnostics.
//
// Usage:
//
//	go run ./cmd/adlint [-only detrand,walerr] [-list] [-json] [packages]
//
// With no package arguments it analyzes ./... from the current directory.
// The process exits 1 when any diagnostic is reported and 2 on usage or
// load errors, mirroring go vet. -json switches the output to a single JSON
// array of findings on stdout for machine consumers (CI annotation,
// editors); exit codes are unchanged. Findings are suppressed per-line with
// //adlint:allow annotations; see the adlint package documentation for the
// grammar and the invariant each analyzer enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/adaudit/impliedidentity/internal/analysis/adlint"
)

// jsonFinding is the machine-readable shape of one diagnostic. Fields are
// stable: CI's problem-matcher step and the Makefile lint-json target
// consume them.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: adlint [-only names] [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range adlint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := adlint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adlint:", err)
		os.Exit(2)
	}

	pkgs, err := adlint.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adlint:", err)
		os.Exit(2)
	}

	diags := adlint.Run(pkgs, analyzers)
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !filepath.IsAbs(rel) {
			pos.Filename = rel
		}
		findings = append(findings, jsonFinding{
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "adlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "adlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
