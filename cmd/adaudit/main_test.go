package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adaudit/impliedidentity/internal/core"
)

func TestParseScale(t *testing.T) {
	cases := map[string]core.Scale{"test": core.ScaleTest, "bench": core.ScaleBench, "full": core.ScaleFull}
	for in, want := range cases {
		got, err := parseScale(in)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScale("huge"); err == nil {
		t.Error("unknown scale: want error")
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no args: want usage error")
	}
	if err := run([]string{"walk", "table1"}); err == nil {
		t.Error("bad verb: want usage error")
	}
	if err := run([]string{"-scale", "enormous", "run", "table1"}); err == nil {
		t.Error("bad scale: want error")
	}
	if err := run([]string{"-scale", "test", "run", "tableZ"}); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Errorf("unknown target: got %v", err)
	}
}

func TestRunTable1EndToEnd(t *testing.T) {
	// The cheapest full-path target: builds the world and prints Table 1.
	if err := run([]string{"-scale", "test", "-seed", "5", "run", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerCachesLab(t *testing.T) {
	r := &runner{scale: core.ScaleTest, seed: 6}
	defer r.close()
	a, err := r.ensureLab()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ensureLab()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ensureLab should cache the lab")
	}
}

func TestScaleDown(t *testing.T) {
	if scaleDown(core.ScaleFull) != core.ScaleBench {
		t.Error("full should scale down to bench for ablations")
	}
	if scaleDown(core.ScaleTest) != core.ScaleTest {
		t.Error("test scale should stay")
	}
}

func TestScaledBehavior(t *testing.T) {
	cfg := scaledBehavior(1.5)
	if cfg.AffinityScale != 1.5 {
		t.Errorf("AffinityScale = %v", cfg.AffinityScale)
	}
	if cfg.BaseCTR == 0 {
		t.Error("defaults should be preserved")
	}
}

func TestRunnerAllTargetsEndToEnd(t *testing.T) {
	// One runner, every artifact handler, sharing the lab and campaigns the
	// way `run all` does. This is the CLI's integration test.
	benchPath := filepath.Join(t.TempDir(), "bench_privacy.json")
	r := &runner{scale: core.ScaleTest, seed: 21, csvDir: t.TempDir(), benchPath: benchPath}
	defer r.close()
	handlers := []struct {
		name string
		fn   func() error
	}{
		{"table1", r.table1},
		{"table3", r.table3},
		{"fig3", r.fig3},
		{"table4a", r.table4a},
		{"fig4", r.fig4},
		{"table4b", r.table4b},
		{"fig6", r.fig6},
		{"fig5", r.fig5},
		{"table4c", r.table4c},
		{"fig1", r.fig1},
		{"fig7", r.fig7},
		{"table5", r.table5},
		{"tableA1", r.tableA1},
		{"fig2", r.fig2},
		{"table2", r.table2},
		{"objectives", r.objectives},
		{"groups", r.groups},
		{"lookalike", r.lookalike},
		{"power", r.power},
		{"privacy", r.privacy},
		{"verify", r.verify},
	}
	for _, h := range handlers {
		if err := h.fn(); err != nil {
			t.Fatalf("%s: %v", h.name, err)
		}
	}

	// The privacy target must have recorded a parseable sweep with the full
	// 3×3 grid and the baseline (off) level included.
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("privacy bench record: %v", err)
	}
	var sweep core.PrivacySweepResult
	if err := json.Unmarshal(data, &sweep); err != nil {
		t.Fatalf("privacy bench record does not parse: %v", err)
	}
	if sweep.Schema != core.PrivacySweepSchema {
		t.Errorf("bench schema = %q, want %q", sweep.Schema, core.PrivacySweepSchema)
	}
	if len(sweep.Cells) != 9 {
		t.Fatalf("bench cells = %d, want 9", len(sweep.Cells))
	}
	off := sweep.Cells[0]
	if off.K != 0 || off.Epsilon != 0 || off.Level != "off" {
		t.Errorf("first cell should be the off baseline, got %+v", off)
	}
	if off.MeasurableAds == 0 {
		t.Error("baseline cell measured no ads")
	}
}
