// Command adaudit reproduces the paper's evaluation: it builds the simulated
// world (voter registries, user population, ad platform with a trained
// delivery-optimization model behind a marketing API) and runs the audit
// methodology to regenerate every table and figure, printing measured values
// next to the paper's published ones.
//
// Usage:
//
//	adaudit run all                  # every artifact
//	adaudit run table3               # one artifact
//	adaudit -scale bench run fig7    # smaller, faster world
//	adaudit -csv out/ run table3     # also dump per-ad deliveries as CSV
//
// Targets: table1 table2 table3 table4a table4b table4c table5 tableA1
// fig1 fig2 fig3 fig4 fig5 fig6 fig7 ablations privacy all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/adaudit/impliedidentity/internal/core"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adaudit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adaudit", flag.ContinueOnError)
	scaleName := fs.String("scale", "full", "simulation scale: test, bench, or full")
	seed := fs.Int64("seed", 1, "master seed for the simulated world")
	csvDir := fs.String("csv", "", "directory to write per-ad delivery CSVs into (optional)")
	benchPath := fs.String("bench", "", "path to write the privacy skew-detectability record as JSON (privacy target)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 || rest[0] != "run" {
		return fmt.Errorf("usage: adaudit [flags] run <target>; see -h for targets")
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	r := &runner{scale: scale, seed: *seed, csvDir: *csvDir, benchPath: *benchPath}
	defer r.close()
	return r.run(strings.ToLower(rest[1]))
}

func parseScale(s string) (core.Scale, error) {
	switch s {
	case "test":
		return core.ScaleTest, nil
	case "bench":
		return core.ScaleBench, nil
	case "full":
		return core.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want test, bench, or full)", s)
}

// runner lazily builds the lab and caches experiment results so `run all`
// executes each campaign exactly once.
type runner struct {
	scale     core.Scale
	seed      int64
	csvDir    string
	benchPath string

	lab         *core.Lab
	stock       *core.StockResult
	stockCapped *core.StockResult
	synthetic   *core.SyntheticResult
	employment  *core.EmploymentResult
	poverty     *core.PovertyResult
}

func (r *runner) close() {
	if r.lab != nil {
		_ = r.lab.Close()
	}
}

func (r *runner) ensureLab() (*core.Lab, error) {
	if r.lab != nil {
		return r.lab, nil
	}
	fmt.Printf("building simulated world (scale=%s, seed=%d)...\n", r.scale, r.seed)
	lab, err := core.NewLab(core.LabConfig{Seed: r.seed, Scale: r.scale})
	if err != nil {
		return nil, err
	}
	fmt.Printf("marketing API listening at %s\n\n", lab.URL())
	r.lab = lab
	return lab, nil
}

func (r *runner) ensureStock() (*core.StockResult, error) {
	if r.stock != nil {
		return r.stock, nil
	}
	lab, err := r.ensureLab()
	if err != nil {
		return nil, err
	}
	fmt.Println("running Campaign 1 (100 stock images × 2 audiences, all ages)...")
	res, err := lab.RunStockExperiment(core.StockExperimentOptions{Seed: r.seed + 100})
	if err != nil {
		return nil, err
	}
	r.stock = res
	return res, r.dumpCSV("campaign1_stock.csv", res.Deliveries)
}

func (r *runner) ensureStockCapped() (*core.StockResult, error) {
	if r.stockCapped != nil {
		return r.stockCapped, nil
	}
	lab, err := r.ensureLab()
	if err != nil {
		return nil, err
	}
	fmt.Println("running Campaign 2 (stock images, audience age ≤ 45)...")
	res, err := lab.RunStockExperiment(core.StockExperimentOptions{Seed: r.seed + 200, AgeMax: 45, BudgetCents: 350})
	if err != nil {
		return nil, err
	}
	r.stockCapped = res
	return res, r.dumpCSV("campaign2_stock_capped.csv", res.Deliveries)
}

func (r *runner) ensureSynthetic() (*core.SyntheticResult, error) {
	if r.synthetic != nil {
		return r.synthetic, nil
	}
	lab, err := r.ensureLab()
	if err != nil {
		return nil, err
	}
	fmt.Println("running Campaign 3 (StyleGAN-style synthetic faces, 5 people × 20 variants)...")
	res, err := lab.RunSyntheticExperiment(core.SyntheticExperimentOptions{Seed: r.seed + 300, DiscoverySamples: r.discoverySamples()})
	if err != nil {
		return nil, err
	}
	r.synthetic = res
	return res, r.dumpCSV("campaign3_synthetic.csv", res.Deliveries)
}

func (r *runner) ensureEmployment() (*core.EmploymentResult, error) {
	if r.employment != nil {
		return r.employment, nil
	}
	lab, err := r.ensureLab()
	if err != nil {
		return nil, err
	}
	var pipeline *core.SyntheticPipeline
	if r.synthetic != nil {
		pipeline = r.synthetic.Pipeline
	}
	fmt.Println("running Campaign 4 (employment ads: 11 jobs × 4 implied identities)...")
	res, err := lab.RunEmploymentExperiment(core.EmploymentExperimentOptions{
		Seed:             r.seed + 400,
		Pipeline:         pipeline,
		DiscoverySamples: r.discoverySamples(),
	})
	if err != nil {
		return nil, err
	}
	r.employment = res
	return res, r.dumpCSV("campaign4_employment.csv", res.Deliveries)
}

func (r *runner) ensurePoverty() (*core.PovertyResult, error) {
	if r.poverty != nil {
		return r.poverty, nil
	}
	lab, err := r.ensureLab()
	if err != nil {
		return nil, err
	}
	fmt.Println("running Appendix A (poverty-matched audiences, hostile ad review)...")
	res, err := lab.RunPovertyExperiment(core.PovertyExperimentOptions{Seed: r.seed + 500})
	if err != nil {
		return nil, err
	}
	r.poverty = res
	return res, r.dumpCSV("appendixA_poverty.csv", res.Deliveries)
}

func (r *runner) discoverySamples() int {
	switch r.scale {
	case core.ScaleFull:
		return 50000 // the paper's sample count
	case core.ScaleBench:
		return 10000
	default:
		return 2000
	}
}

func (r *runner) dumpCSV(name string, ds []core.Delivery) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.DeliveriesCSV(f, ds); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", filepath.Join(r.csvDir, name))
	return nil
}

func (r *runner) run(target string) error {
	handlers := map[string]func() error{
		"table1":     r.table1,
		"table2":     r.table2,
		"table3":     r.table3,
		"table4a":    r.table4a,
		"table4b":    r.table4b,
		"table4c":    r.table4c,
		"table5":     r.table5,
		"tablea1":    r.tableA1,
		"fig1":       r.fig1,
		"fig2":       r.fig2,
		"fig3":       r.fig3,
		"fig4":       r.fig4,
		"fig5":       r.fig5,
		"fig6":       r.fig6,
		"fig7":       r.fig7,
		"ablations":  r.ablations,
		"objectives": r.objectives,
		"groups":     r.groups,
		"lookalike":  r.lookalike,
		"feedback":   r.feedback,
		"verify":     r.verify,
		"power":      r.power,
		"privacy":    r.privacy,
	}
	if target == "all" {
		order := []string{
			"table1", "table3", "fig3", "table4a", "fig4", "table4b",
			"fig6", "fig5", "table4c", "fig1", "fig7", "table5",
			"tablea1", "fig2", "table2", "objectives", "groups",
			"lookalike", "feedback", "power", "privacy", "ablations", "verify",
		}
		for _, t := range order {
			if err := handlers[t](); err != nil {
				return fmt.Errorf("%s: %w", t, err)
			}
			fmt.Println()
		}
		return nil
	}
	h, ok := handlers[target]
	if !ok {
		return fmt.Errorf("unknown target %q", target)
	}
	return h()
}

func (r *runner) table1() error {
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	fl, nc := lab.BalancedSamples(lab.Config.Scale.PerCell(), r.seed+50)
	fmt.Print(report.Table1(core.Table1(fl, nc)))
	return nil
}

func (r *runner) table2() error {
	var rows []core.Table2Row
	if res, err := r.ensureStock(); err == nil {
		rows = append(rows, core.SummarizeCampaign(res.Run, "Stock", "§5.2"))
	} else {
		return err
	}
	if res, err := r.ensureStockCapped(); err == nil {
		rows = append(rows, core.SummarizeCampaign(res.Run, "Stock", "§5.3"))
	} else {
		return err
	}
	if res, err := r.ensureSynthetic(); err == nil {
		rows = append(rows, core.SummarizeCampaign(res.Run, "Synthetic", "§5.5"))
	} else {
		return err
	}
	if res, err := r.ensureEmployment(); err == nil {
		rows = append(rows, core.SummarizeCampaign(res.Run, "Synthetic+job background", "§6"))
	} else {
		return err
	}
	fmt.Print(report.Table2(rows))
	return nil
}

func (r *runner) table3() error {
	res, err := r.ensureStock()
	if err != nil {
		return err
	}
	fmt.Print(report.Table3(res.Table3))
	return nil
}

func (r *runner) table4a() error {
	res, err := r.ensureStock()
	if err != nil {
		return err
	}
	fmt.Print(report.Table4(res.Table4, "a"))
	return nil
}

func (r *runner) table4b() error {
	res, err := r.ensureStockCapped()
	if err != nil {
		return err
	}
	fmt.Print(report.Table4(res.Table4, "b"))
	return nil
}

func (r *runner) table4c() error {
	res, err := r.ensureSynthetic()
	if err != nil {
		return err
	}
	fmt.Print(report.Table4(res.Table4, "c"))
	return nil
}

func (r *runner) table5() error {
	res, err := r.ensureEmployment()
	if err != nil {
		return err
	}
	fmt.Print(report.Table5(res.Table5))
	return nil
}

func (r *runner) tableA1() error {
	res, err := r.ensurePoverty()
	if err != nil {
		return err
	}
	fmt.Print(report.PovertySummary(res))
	fmt.Print(report.TableA1(res.TableA1))
	return nil
}

func (r *runner) fig1() error {
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	// Reuse the synthetic pipeline if a synthetic campaign already ran.
	var pipeline *core.SyntheticPipeline
	if r.synthetic != nil {
		pipeline = r.synthetic.Pipeline
	} else {
		if pipeline, err = core.NewSyntheticPipeline(r.discoverySamples(), r.seed+600); err != nil {
			return err
		}
	}
	res, err := lab.RunFigure1(pipeline, r.seed+601)
	if err != nil {
		return err
	}
	fmt.Print(report.Figure1(res))
	return nil
}

func (r *runner) fig2() error {
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	fmt.Println("validating the race-inference methodology against the simulator oracle...")
	res, err := lab.ValidateRaceInference(2, r.seed+700)
	if err != nil {
		return err
	}
	fmt.Print(report.Figure2Validation(res))
	return nil
}

func (r *runner) fig3() error {
	res, err := r.ensureStock()
	if err != nil {
		return err
	}
	fmt.Print(report.Figure3(res.Deliveries, "Figure 3 (stock images)"))
	fmt.Print(report.Figure3RaceCI(res.Deliveries, r.seed+950))
	return nil
}

func (r *runner) fig4() error {
	res, err := r.ensureStock()
	if err != nil {
		return err
	}
	fmt.Print(report.Figure4(core.Figure4(res.Deliveries)))
	return nil
}

func (r *runner) fig5() error {
	res, err := r.ensureSynthetic()
	if err != nil {
		return err
	}
	fmt.Print(report.Figure3(res.Deliveries, "Figure 5 (synthetic images)"))
	return nil
}

func (r *runner) fig6() error {
	res, err := r.ensureSynthetic()
	if err != nil {
		return err
	}
	fmt.Print(report.Figure6(res.Sweep))
	return nil
}

func (r *runner) fig7() error {
	res, err := r.ensureEmployment()
	if err != nil {
		return err
	}
	fmt.Print(report.Figure7(res.RacePanel, res.GenderPanel))
	return nil
}

func (r *runner) objectives() error {
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	fmt.Println("running E13: the same ads under Awareness / Traffic / Conversions...")
	res, err := lab.RunObjectiveComparison(r.seed + 900)
	if err != nil {
		return err
	}
	fmt.Print(report.Objectives(res))
	return nil
}

func (r *runner) groups() error {
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	fmt.Println("running E14: single-person vs diverse group-photo ads...")
	res, err := lab.RunGroupPhotoExperiment(r.seed + 910)
	if err != nil {
		return err
	}
	fmt.Print(report.GroupPhotos(res))
	return nil
}

func (r *runner) lookalike() error {
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	fmt.Println("running E15: lookalike expansion from a Black-voter seed...")
	res, err := lab.RunLookalikeExperiment(1200, 1500, r.seed+920)
	if err != nil {
		return err
	}
	fmt.Print(report.Lookalike(res))
	return nil
}

func (r *runner) power() error {
	fmt.Println("Audit power analysis — probability of detecting a delivery skew")
	fmt.Println("(two-sided α = 0.05, base rate 0.55; the paper's ads averaged ≈ 180 countable impressions)")
	fmt.Printf("%-9s", "delta")
	pairCounts := []int{1, 5, 10, 25, 50, 100}
	for _, k := range pairCounts {
		fmt.Printf(" %7d", k)
	}
	fmt.Println()
	for _, delta := range []float64{0.02, 0.05, 0.10, 0.18, 0.25} {
		fmt.Printf("%-8.2f", delta)
		for _, k := range pairCounts {
			p, err := core.AuditPower(core.PowerOptions{
				Delta: delta, BaseRate: 0.55, ImpressionsPerAd: 180, Pairs: k,
			})
			if err != nil {
				return err
			}
			fmt.Printf(" %6.1f%%", 100*p)
		}
		fmt.Println()
	}
	k, err := core.MinimumPairs(core.PowerOptions{Delta: 0.18, BaseRate: 0.55, ImpressionsPerAd: 180}, 0.95)
	if err != nil {
		return err
	}
	fmt.Printf("pairs needed for 95%% power on the paper's 18-point race effect: %d (paper ran 50)\n", k)
	return nil
}

func (r *runner) privacy() error {
	stock, err := r.ensureStock()
	if err != nil {
		return err
	}
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	fmt.Println("running the skew-detectability sweep: re-reading Campaign 1 at each privacy level...")
	res, err := core.RunPrivacySweep(lab, stock.Run, core.PrivacySweepOptions{Seed: r.seed + 1000})
	if err != nil {
		return err
	}
	fmt.Printf("Privacy skew-detectability sweep (scale=%s, α=%.2f, target power %.0f%%)\n",
		res.Scale, res.Alpha, 100*res.TargetPower)
	fmt.Printf("baseline: race gap %+.4f, gender gap %+.4f, ≈%d impressions/ad, %d pairs/group\n",
		res.BaselineRaceGap, res.BaselineGenderGap, res.ImpressionsPerAd, res.PairsPerGroup)
	fmt.Printf("%-10s %5s %7s %6s %6s %7s %9s %8s %9s %8s %7s %9s\n",
		"level", "k", "eps", "meas", "supp", "cells", "raceGap", "raceP", "genderGap", "genderP", "power", "minImps")
	for _, c := range res.Cells {
		eps := "∞"
		if c.Epsilon > 0 {
			eps = fmt.Sprintf("%.1f", c.Epsilon)
		}
		mark := func(measured, detected bool, p float64) string {
			if !measured {
				return "—"
			}
			s := fmt.Sprintf("%.3f", p)
			if detected {
				s += "*"
			}
			return s
		}
		minImps := "—"
		if c.MinImpressionsPerAd > 0 {
			minImps = fmt.Sprintf("%d", c.MinImpressionsPerAd)
		}
		fmt.Printf("%-10s %5d %7s %6d %6d %7d %+9.4f %8s %+9.4f %8s %6.1f%% %9s\n",
			c.Level, c.K, eps, c.MeasurableAds, c.SuppressedAds, c.SuppressedCellsTotal,
			c.RaceGap, mark(c.RaceMeasured, c.RaceDetected, c.RaceP),
			c.GenderGap, mark(c.GenderMeasured, c.GenderDetected, c.GenderP),
			100*c.AnalyticPower, minImps)
	}
	fmt.Println("(* = skew detected at α; power and minImps are the analytic model at the baseline effect size)")
	if r.benchPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.benchPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.benchPath)
	}
	return nil
}

func (r *runner) verify() error {
	stock, err := r.ensureStock()
	if err != nil {
		return err
	}
	capped, err := r.ensureStockCapped()
	if err != nil {
		return err
	}
	syn, err := r.ensureSynthetic()
	if err != nil {
		return err
	}
	emp, err := r.ensureEmployment()
	if err != nil {
		return err
	}
	pov, err := r.ensurePoverty()
	if err != nil {
		return err
	}
	lab, err := r.ensureLab()
	if err != nil {
		return err
	}
	val, err := lab.ValidateRaceInference(2, r.seed+940)
	if err != nil {
		return err
	}
	checks := core.ShapeChecks(stock, capped, syn, emp, pov, val)
	fmt.Print(report.Checklist(checks))
	if !core.AllPass(checks) {
		return fmt.Errorf("shape verification failed")
	}
	return nil
}

func (r *runner) feedback() error {
	// The feedback loop retrains the shared platform's model; run it on a
	// dedicated lab so other targets keep the pristine model.
	fmt.Println("running E16: retraining the delivery model on its own served impressions...")
	lab, err := core.NewLab(core.LabConfig{Seed: r.seed + 930, Scale: scaleDown(r.scale)})
	if err != nil {
		return err
	}
	defer lab.Close()
	res, err := lab.RunFeedbackLoop(4, r.seed+931)
	if err != nil {
		return err
	}
	fmt.Print(report.FeedbackLoop(res))
	return nil
}

func (r *runner) ablations() error {
	fmt.Println("A1 — delivery optimization off (content-blind auction):")
	noEAR, err := core.NewLab(core.LabConfig{Seed: r.seed + 800, Scale: scaleDown(r.scale), DisableEAR: true})
	if err != nil {
		return err
	}
	defer noEAR.Close()
	res, err := noEAR.RunStockExperiment(core.StockExperimentOptions{Seed: r.seed + 801})
	if err != nil {
		return err
	}
	c, _ := res.Table4.Black.Coefficient("Black")
	p, _ := res.Table4.Black.PValueOf("Black")
	fmt.Printf("  Black coefficient %.4f (p=%.2g, R²=%.3f) — skew vanishes without eAR\n\n",
		c, p, res.Table4.Black.R2)

	fmt.Println("A2 — engagement-affinity strength sweep:")
	for _, scale := range []float64{0.5, 1.0, 1.5} {
		lab, err := core.NewLab(core.LabConfig{Seed: r.seed + 810, Scale: scaleDown(r.scale), Behavior: scaledBehavior(scale)})
		if err != nil {
			return err
		}
		sres, err := lab.RunStockExperiment(core.StockExperimentOptions{Seed: r.seed + 811})
		lab.Close()
		if err != nil {
			return err
		}
		sc, _ := sres.Table4.Black.Coefficient("Black")
		fmt.Printf("  affinity ×%.1f: Black coefficient %.4f\n", scale, sc)
	}
	fmt.Println()

	fmt.Println("A3 — region granularity (state vs DMA-like travel):")
	for _, tp := range []struct {
		name string
		prob float64
	}{{"state-level", 0.004}, {"DMA-level", 0.12}} {
		lab, err := core.NewLab(core.LabConfig{Seed: r.seed + 820, Scale: scaleDown(r.scale), TravelProb: tp.prob})
		if err != nil {
			return err
		}
		vres, err := lab.ValidateRaceInference(2, r.seed+821)
		lab.Close()
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s leakage %.2f%%, inference error %.4f\n", tp.name, 100*vres.MeanOutOfState, vres.MeanAbsError)
	}
	fmt.Println()

	fmt.Println("A4 — reversed-copy aggregation under a location confounder (FL ×1.5 activity):")
	lab4, err := core.NewLab(core.LabConfig{Seed: r.seed + 830, Scale: scaleDown(r.scale), FLActivityBoost: 1.5})
	if err != nil {
		return err
	}
	vres, err := lab4.ValidateRaceInference(2, r.seed+831)
	lab4.Close()
	if err != nil {
		return err
	}
	fmt.Printf("  aggregated inference error %.4f — confounder cancelled\n\n", vres.MeanAbsError)

	fmt.Println("A5 — budget pacing vs greedy spend:")
	for _, greedy := range []bool{false, true} {
		lab, err := core.NewLab(core.LabConfig{Seed: r.seed + 840, Scale: scaleDown(r.scale), GreedyPacing: greedy})
		if err != nil {
			return err
		}
		sres, err := lab.RunStockExperiment(core.StockExperimentOptions{Seed: r.seed + 841, PerPerson: 1})
		lab.Close()
		if err != nil {
			return err
		}
		name := "paced "
		if greedy {
			name = "greedy"
		}
		fmt.Printf("  %s: %d impressions, %.2f$ spend across %d ads\n",
			name, sres.Run.TotalImpressions(), sres.Run.TotalSpendCents()/100, sres.Run.AdCount())
	}
	return nil
}

// scaleDown keeps ablations affordable even at -scale full.
func scaleDown(s core.Scale) core.Scale {
	if s == core.ScaleFull {
		return core.ScaleBench
	}
	return s
}

func scaledBehavior(scale float64) population.BehaviorConfig {
	cfg := population.DefaultBehaviorConfig()
	cfg.AffinityScale = scale
	return cfg
}
