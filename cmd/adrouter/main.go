// Command adrouter serves the marketing API over a fleet of adplatform shard
// backends. It is the multi-process face of the platform: advertiser tooling
// (cmd/adload, cmd/adaudit, curl) points at the router exactly as it would at
// a single adplatform, while CRUD fans out to every shard and delivery days
// run the cross-shard two-phase budget protocol. For a fixed (world seed,
// delivery seed, shard count) the fleet's output is byte-identical to the
// single-process engine with the same worker count.
//
// Every backend must be built with the SAME world flags (-seed, -voters,
// -logrows); the router asserts cross-shard agreement on every response and
// fails loudly on divergence.
//
// With -supervise the router also runs the fleet supervisor: it probes every
// shard, quarantines one that stops answering (CRUD keeps running against the
// survivors, journaled for the absentee), and — when -shard-cmd is given — owns
// the shard child processes outright: it spawns them at boot and resurrects a
// dead one under the SAME shard index, replaying the journal gap and gating
// readmission on a cross-shard state digest.
//
// Usage:
//
//	adrouter -addr 127.0.0.1:8400 \
//	  -shards http://127.0.0.1:8401,http://127.0.0.1:8402
//
//	adrouter -addr 127.0.0.1:8400 -supervise \
//	  -shards http://127.0.0.1:8401,http://127.0.0.1:8402 \
//	  -shard-cmd './bin/adplatform -addr {addr} -store-dir wal/shard{shard}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/adaudit/impliedidentity/internal/coordinator"
	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/supervisor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adrouter", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8400", "listen address")
	shards := fs.String("shards", "", "comma-separated shard backend base URLs, in shard order (required)")
	maxFanout := fs.Int("max-fanout", 0, "max concurrent backend calls per fan-out (0 = all shards at once)")
	dayRetries := fs.Int("day-retries", 5, "delivery-day attempts before giving up (a shard crash mid-day costs one attempt)")
	dayBackoff := fs.Duration("day-backoff", 2*time.Second, "initial wait between delivery-day attempts (doubles, capped at 8x)")
	waitReady := fs.Duration("wait-ready", 30*time.Second, "how long to wait for every backend's /healthz at startup (0 skips the check)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for draining in-flight requests")
	supervise := fs.Bool("supervise", false, "run the fleet supervisor: probe shards, quarantine the unreachable, journal their CRUD gap, and rejoin them through the digest gate")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "supervisor probe cadence")
	journalCap := fs.Int("journal-cap", 256, "max journaled mutations while a shard is down; a full journal sheds new writes with 503 + Retry-After")
	shardCmd := fs.String("shard-cmd", "", "shard child command template ({shard} and {addr} expand per shard); the router spawns the children at boot and the supervisor resurrects dead ones under the same index")
	shardLogDir := fs.String("shard-log-dir", "", "directory for per-shard child logs (with -shard-cmd; appended across relaunches)")
	faultRate := fs.Float64("fault-rate", 0, "chaos: probability an outbound shard RPC draws an injected fault (0 disables)")
	faultSeed := fs.Int64("fault-seed", 1, "chaos: fault-schedule seed (same seed, same schedule)")
	faultKinds := fs.String("fault-kinds", "all", "chaos: comma-separated fault kinds (latency,429,5xx,drop,slow) or all")
	privacyK := fs.Int("privacy-k", 0, "insights privacy: k-anonymity threshold applied to the MERGED report (0 disables suppression); shards must stay raw")
	privacyEpsilon := fs.Float64("privacy-epsilon", 0, "insights privacy: DP noise parameter epsilon applied after merge (0 disables noise)")
	privacySeed := fs.Int64("privacy-seed", 1, "insights privacy: noise-stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backends := splitBackends(*shards)
	if len(backends) == 0 {
		return fmt.Errorf("-shards is required (comma-separated backend URLs)")
	}
	kinds, err := faults.ParseKinds(*faultKinds)
	if err != nil {
		return err
	}
	privCfg, err := privacy.FromFlags(*privacyK, *privacyEpsilon, *privacySeed)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	// Fault injection sits on the router->shard RPC path, client-side: every
	// fan-out call and every supervisor probe crosses it, exactly like a flaky
	// network between router and fleet. Injected error ANSWERS must not flap
	// the health model; only transport silence scores toward down.
	var transport http.RoundTripper
	if *faultRate > 0 {
		inj, err := faults.New(faults.Config{Seed: *faultSeed, Rate: *faultRate, Kinds: kinds}, reg)
		if err != nil {
			return err
		}
		transport = faults.NewTransport(nil, inj, nil)
		fmt.Printf("RPC fault injection armed: rate %.2f, seed %d, kinds %v\n", *faultRate, *faultSeed, kinds)
	}
	coord, err := coordinator.New(coordinator.Config{
		Backends:    backends,
		MaxFanout:   *maxFanout,
		DayAttempts: *dayRetries,
		DayBackoff:  *dayBackoff,
		JournalCap:  *journalCap,
		Transport:   transport,
		Privacy:     privCfg,
	}, reg)
	if err != nil {
		return err
	}
	if privCfg.Enabled() {
		fmt.Printf("insights privacy armed on the merged report: level %s, k=%d, epsilon=%v, seed %d\n",
			privCfg.Level, privCfg.K, privCfg.Epsilon, privCfg.Seed)
	}

	// With a command template the router owns the shard children: initial
	// spawn here, resurrection by the supervisor, SIGKILL sweep on exit.
	var rel *supervisor.ProcessRelauncher
	if *shardCmd != "" {
		argv, logs, err := shardCommandLines(*shardCmd, *shardLogDir, backends)
		if err != nil {
			return err
		}
		rel, err = supervisor.NewProcessRelauncher(argv, logs)
		if err != nil {
			return err
		}
		for i := range backends {
			if err := rel.Start(i); err != nil {
				rel.StopAll()
				return err
			}
			fmt.Printf("  shard%d child: pid %d (%s)\n", i, rel.Pid(i), strings.Join(argv[i], " "))
		}
		defer rel.StopAll()
	}

	if *waitReady > 0 {
		if err := waitForBackends(backends, *waitReady); err != nil {
			return err
		}
	}
	router, err := coordinator.NewRouter(coord, reg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("router listening at http://%s over %d shard(s); topology at /v1/topology, metrics at /metrics\n",
		ln.Addr(), coord.Shards())
	for i, u := range backends {
		fmt.Printf("  shard%d -> %s\n", i, u)
	}
	httpSrv := &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *supervise {
		// A nil *ProcessRelauncher must stay a nil interface: re-attach-only
		// mode (an external process manager restarts the children).
		var relIface supervisor.Relauncher
		if rel != nil {
			relIface = rel
		}
		sup := supervisor.New(coord, relIface, supervisor.Config{ProbeInterval: *probeInterval, Logf: log.Printf}, reg)
		sup.Start(ctx)
		defer sup.Stop()
		fmt.Printf("fleet supervisor running (probe every %s, relaunch %v)\n", *probeInterval, rel != nil)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("signal received, draining in-flight requests (budget %s)...\n", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	var drainErr error
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		drainErr = fmt.Errorf("drain timed out after %s: %w", *drainTimeout, err)
		_ = httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		drainErr = errors.Join(drainErr, err)
	}
	fmt.Println("final router metrics:")
	fmt.Print(reg.Snapshot().String())
	return drainErr
}

// shardCommandLines renders the -shard-cmd template once per shard:
// {shard} -> the shard index, {addr} -> the backend's host:port. The rendered
// line is whitespace-split (no shell), so paths with spaces need the caller to
// avoid them — a restriction worth the determinism of not involving a shell.
func shardCommandLines(tmpl, logDir string, backends []string) ([][]string, []string, error) {
	argv := make([][]string, len(backends))
	logs := make([]string, len(backends))
	for i, backend := range backends {
		u, err := url.Parse(backend)
		if err != nil || u.Host == "" {
			return nil, nil, fmt.Errorf("backend %q: cannot derive {addr}: %v", backend, err)
		}
		line := strings.ReplaceAll(tmpl, "{shard}", strconv.Itoa(i))
		line = strings.ReplaceAll(line, "{addr}", u.Host)
		argv[i] = strings.Fields(line)
		if len(argv[i]) == 0 {
			return nil, nil, fmt.Errorf("-shard-cmd rendered empty for shard %d", i)
		}
		if logDir != "" {
			if err := os.MkdirAll(logDir, 0o755); err != nil {
				return nil, nil, err
			}
			logs[i] = filepath.Join(logDir, fmt.Sprintf("shard%d.log", i))
		}
	}
	return argv, logs, nil
}

func splitBackends(raw string) []string {
	var out []string
	for _, part := range strings.Split(raw, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// waitForBackends polls every backend's liveness endpoint until all answer or
// the budget runs out, so the router can start before (or while) its fleet
// does — convenient for process supervisors that start everything at once.
func waitForBackends(backends []string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: 2 * time.Second}
	for _, u := range backends {
		for {
			resp, err := client.Get(u + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("backend %s not ready within %s", u, budget)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	return nil
}
