// Command adrouter serves the marketing API over a fleet of adplatform shard
// backends. It is the multi-process face of the platform: advertiser tooling
// (cmd/adload, cmd/adaudit, curl) points at the router exactly as it would at
// a single adplatform, while CRUD fans out to every shard and delivery days
// run the cross-shard two-phase budget protocol. For a fixed (world seed,
// delivery seed, shard count) the fleet's output is byte-identical to the
// single-process engine with the same worker count.
//
// Every backend must be built with the SAME world flags (-seed, -voters,
// -logrows); the router asserts cross-shard agreement on every response and
// fails loudly on divergence.
//
// Usage:
//
//	adrouter -addr 127.0.0.1:8400 \
//	  -shards http://127.0.0.1:8401,http://127.0.0.1:8402
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/adaudit/impliedidentity/internal/coordinator"
	"github.com/adaudit/impliedidentity/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adrouter", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8400", "listen address")
	shards := fs.String("shards", "", "comma-separated shard backend base URLs, in shard order (required)")
	maxFanout := fs.Int("max-fanout", 0, "max concurrent backend calls per fan-out (0 = all shards at once)")
	dayRetries := fs.Int("day-retries", 5, "delivery-day attempts before giving up (a shard crash mid-day costs one attempt)")
	dayBackoff := fs.Duration("day-backoff", 2*time.Second, "initial wait between delivery-day attempts (doubles, capped at 8x)")
	waitReady := fs.Duration("wait-ready", 30*time.Second, "how long to wait for every backend's /healthz at startup (0 skips the check)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for draining in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backends := splitBackends(*shards)
	if len(backends) == 0 {
		return fmt.Errorf("-shards is required (comma-separated backend URLs)")
	}

	reg := obs.NewRegistry()
	coord, err := coordinator.New(coordinator.Config{
		Backends:    backends,
		MaxFanout:   *maxFanout,
		DayAttempts: *dayRetries,
		DayBackoff:  *dayBackoff,
	}, reg)
	if err != nil {
		return err
	}
	if *waitReady > 0 {
		if err := waitForBackends(backends, *waitReady); err != nil {
			return err
		}
	}
	router, err := coordinator.NewRouter(coord, reg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("router listening at http://%s over %d shard(s); topology at /v1/topology, metrics at /metrics\n",
		ln.Addr(), coord.Shards())
	for i, u := range backends {
		fmt.Printf("  shard%d -> %s\n", i, u)
	}
	httpSrv := &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("signal received, draining in-flight requests (budget %s)...\n", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	var drainErr error
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		drainErr = fmt.Errorf("drain timed out after %s: %w", *drainTimeout, err)
		_ = httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		drainErr = errors.Join(drainErr, err)
	}
	fmt.Println("final router metrics:")
	fmt.Print(reg.Snapshot().String())
	return drainErr
}

func splitBackends(raw string) []string {
	var out []string
	for _, part := range strings.Split(raw, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// waitForBackends polls every backend's liveness endpoint until all answer or
// the budget runs out, so the router can start before (or while) its fleet
// does — convenient for process supervisors that start everything at once.
func waitForBackends(backends []string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: 2 * time.Second}
	for _, u := range backends {
		for {
			resp, err := client.Get(u + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("backend %s not ready within %s", u, budget)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	return nil
}
