package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func TestWriteExtractsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, 1)
	flCfg.NumVoters = 200
	fl, err := voter.Generate(flCfg)
	if err != nil {
		t.Fatal(err)
	}
	ncCfg := voter.DefaultGeneratorConfig(demo.StateNC, 2)
	ncCfg.NumVoters = 200
	nc, err := voter.Generate(ncCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeExtracts(dir, fl, nc); err != nil {
		t.Fatal(err)
	}
	// The written files parse back to identical records.
	ff, err := os.Open(filepath.Join(dir, "fl_voter_extract.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	got, err := voter.ParseFL(ff)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fl.Records) {
		t.Errorf("FL round trip: %d records, want %d", len(got), len(fl.Records))
	}
	nf, err := os.Open(filepath.Join(dir, "ncvoter.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	gotNC, err := voter.ParseNC(nf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNC) != len(nc.Records) {
		t.Errorf("NC round trip: %d records, want %d", len(gotNC), len(nc.Records))
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-voters", "nope"}); err == nil {
		t.Error("bad flag value: want error")
	}
	// An unusable address should fail fast (before the long training).
	if err := run([]string{"-voters", "2000", "-logrows", "1500", "-addr", "256.0.0.1:99999"}); err == nil {
		t.Error("bad address: want error")
	}
}
