// Command adplatform serves the simulated advertising platform's marketing
// API over TCP, for driving the audit from external tooling (or from the
// examples in this repository). It builds the synthetic world — FL/NC voter
// registries, the matched user population, and the platform with its trained
// delivery-optimization model — then listens until interrupted.
//
// Usage:
//
//	adplatform -addr 127.0.0.1:8399 -scale bench -seed 7
//
// The server also writes the generated voter extracts to -voterdir (if set),
// so an external auditor can parse them exactly as it would the real public
// records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adplatform:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adplatform", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8399", "listen address")
	seed := fs.Int64("seed", 1, "world seed")
	voters := fs.Int("voters", 40000, "voters per state")
	logRows := fs.Int("logrows", 30000, "engagement-log rows for eAR training")
	voterDir := fs.String("voterdir", "", "directory to write FL/NC voter extracts into (optional)")
	faultRate := fs.Float64("fault-rate", 0, "chaos: probability a request draws an injected fault (0 disables)")
	faultSeed := fs.Int64("fault-seed", 1, "chaos: fault-schedule seed (same seed, same schedule)")
	faultKinds := fs.String("fault-kinds", "all", "chaos: comma-separated fault kinds (latency,429,5xx,drop,slow) or all")
	shedCap := fs.Int("shed-cap", marketing.DefaultServerLimits().MaxInFlight, "max in-flight requests before shedding with 429 (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kinds, err := faults.ParseKinds(*faultKinds)
	if err != nil {
		return err
	}

	fmt.Printf("generating registries (%d voters per state)...\n", *voters)
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, *seed+1)
	flCfg.NumVoters = *voters
	ncCfg := voter.DefaultGeneratorConfig(demo.StateNC, *seed+2)
	ncCfg.NumVoters = *voters
	fl, err := voter.Generate(flCfg)
	if err != nil {
		return err
	}
	nc, err := voter.Generate(ncCfg)
	if err != nil {
		return err
	}
	if *voterDir != "" {
		if err := writeExtracts(*voterDir, fl, nc); err != nil {
			return err
		}
	}

	fmt.Println("building population and training the platform...")
	pop, err := population.Build(population.Config{Seed: *seed + 3}, fl, nc)
	if err != nil {
		return err
	}
	behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
	if err != nil {
		return err
	}
	cfg := platform.DefaultConfig(*seed + 4)
	cfg.Training.LogRows = *logRows
	plat, err := platform.New(cfg, pop, behave)
	if err != nil {
		return err
	}
	limits := marketing.DefaultServerLimits()
	limits.MaxInFlight = *shedCap
	srv, err := marketing.NewServer(plat, marketing.WithLimits(limits))
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if *faultRate > 0 {
		inj, err := faults.New(faults.Config{Seed: *faultSeed, Rate: *faultRate, Kinds: kinds}, srv.Metrics())
		if err != nil {
			return err
		}
		handler = inj.Middleware(handler)
		fmt.Printf("fault injection armed: rate %.2f, seed %d, kinds %v\n", *faultRate, *faultSeed, kinds)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("marketing API listening at http://%s (%d users); metrics at /metrics, liveness at /healthz\n",
		ln.Addr(), len(pop.Users))
	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	// Serve until the listener fails or a shutdown signal arrives, then
	// drain in-flight requests and log the final serving counters so a
	// load-test session ends with a server-side record.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("signal received, draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("final serving metrics:")
	fmt.Print(srv.Metrics().Snapshot().String())
	return nil
}

func writeExtracts(dir string, fl, nc *voter.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	flPath := filepath.Join(dir, "fl_voter_extract.txt")
	f, err := os.Create(flPath)
	if err != nil {
		return err
	}
	if err := voter.WriteFL(f, fl.Records); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ncPath := filepath.Join(dir, "ncvoter.txt")
	g, err := os.Create(ncPath)
	if err != nil {
		return err
	}
	if err := voter.WriteNC(g, nc.Records); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", flPath, ncPath)
	return nil
}
