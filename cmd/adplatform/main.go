// Command adplatform serves the simulated advertising platform's marketing
// API over TCP, for driving the audit from external tooling (or from the
// examples in this repository). It builds the synthetic world — FL/NC voter
// registries, the matched user population, and the platform with its trained
// delivery-optimization model — then listens until interrupted.
//
// Usage:
//
//	adplatform -addr 127.0.0.1:8399 -scale bench -seed 7
//
// The server also writes the generated voter extracts to -voterdir (if set),
// so an external auditor can parse them exactly as it would the real public
// records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/adaudit/impliedidentity/internal/demo"
	"github.com/adaudit/impliedidentity/internal/faults"
	"github.com/adaudit/impliedidentity/internal/marketing"
	"github.com/adaudit/impliedidentity/internal/obs"
	"github.com/adaudit/impliedidentity/internal/platform"
	"github.com/adaudit/impliedidentity/internal/population"
	"github.com/adaudit/impliedidentity/internal/privacy"
	"github.com/adaudit/impliedidentity/internal/store"
	"github.com/adaudit/impliedidentity/internal/voter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adplatform:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adplatform", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8399", "listen address")
	seed := fs.Int64("seed", 1, "world seed")
	voters := fs.Int("voters", 40000, "voters per state")
	logRows := fs.Int("logrows", 30000, "engagement-log rows for eAR training")
	voterDir := fs.String("voterdir", "", "directory to write FL/NC voter extracts into (optional)")
	faultRate := fs.Float64("fault-rate", 0, "chaos: probability a request draws an injected fault (0 disables)")
	faultSeed := fs.Int64("fault-seed", 1, "chaos: fault-schedule seed (same seed, same schedule)")
	faultKinds := fs.String("fault-kinds", "all", "chaos: comma-separated fault kinds (latency,429,5xx,drop,slow) or all")
	shedCap := fs.Int("shed-cap", marketing.DefaultServerLimits().MaxInFlight, "max in-flight requests before shedding with 429 (0 disables)")
	reviewReject := fs.Float64("review-reject", -1, "override the ad-review rejection probability (0..1; negative keeps the default) — every shard in one fleet must agree, and chaos soaks set 0 so a replayed create cannot diverge on a review re-roll")
	storeDir := fs.String("store-dir", "", "durable state directory: WAL + snapshots, recovered on boot (empty disables durability)")
	fsyncMode := fs.String("fsync", "always", "WAL fsync discipline: always, interval, or none")
	snapshotEvery := fs.Int("snapshot-every", 5000, "write a snapshot and compact the WAL every N records (0 disables automatic snapshots)")
	deliveryWorkers := fs.Int("delivery-workers", 1, "default delivery shard count for /v1/deliver (1 = sequential oracle engine; requests may override)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for draining in-flight requests (must exceed the longest /v1/deliver day)")
	privacyK := fs.Int("privacy-k", 0, "insights privacy: k-anonymity threshold for breakdown cells and minimum audience (0 disables suppression)")
	privacyEpsilon := fs.Float64("privacy-epsilon", 0, "insights privacy: DP noise parameter epsilon (0 disables noise; smaller = noisier)")
	privacySeed := fs.Int64("privacy-seed", 1, "insights privacy: noise-stream seed (same seed, same noise — keep it per-deployment, not per-query)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kinds, err := faults.ParseKinds(*faultKinds)
	if err != nil {
		return err
	}
	fsync, err := store.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	privCfg, err := privacy.FromFlags(*privacyK, *privacyEpsilon, *privacySeed)
	if err != nil {
		return err
	}

	fmt.Printf("generating registries (%d voters per state)...\n", *voters)
	flCfg := voter.DefaultGeneratorConfig(demo.StateFL, *seed+1)
	flCfg.NumVoters = *voters
	ncCfg := voter.DefaultGeneratorConfig(demo.StateNC, *seed+2)
	ncCfg.NumVoters = *voters
	fl, err := voter.Generate(flCfg)
	if err != nil {
		return err
	}
	nc, err := voter.Generate(ncCfg)
	if err != nil {
		return err
	}
	if *voterDir != "" {
		if err := writeExtracts(*voterDir, fl, nc); err != nil {
			return err
		}
	}

	fmt.Println("building population and training the platform...")
	pop, err := population.Build(population.Config{Seed: *seed + 3}, fl, nc)
	if err != nil {
		return err
	}
	behave, err := population.NewBehavior(population.DefaultBehaviorConfig())
	if err != nil {
		return err
	}
	cfg := platform.DefaultConfig(*seed + 4)
	cfg.Training.LogRows = *logRows
	cfg.DeliveryWorkers = *deliveryWorkers
	if *reviewReject >= 0 {
		if *reviewReject > 1 {
			return fmt.Errorf("-review-reject %v out of range [0,1]", *reviewReject)
		}
		cfg.ReviewRejectProb = *reviewReject
	}
	plat, err := platform.New(cfg, pop, behave)
	if err != nil {
		return err
	}
	limits := marketing.DefaultServerLimits()
	limits.MaxInFlight = *shedCap
	reg := obs.NewRegistry()
	// Delivery-phase metrics (ticks/sec, auctions/sec, merge time) land in
	// the same registry the HTTP middleware reports through GET /metrics.
	plat.SetObserver(reg, nil)
	serverOpts := []marketing.ServerOption{marketing.WithLimits(limits), marketing.WithRegistry(reg)}
	if privCfg.Enabled() {
		// Single-process privatization. In a fleet, set these flags on the
		// router instead (merge-then-privatize): a privatizing shard makes the
		// coordinator refuse its insights.
		serverOpts = append(serverOpts, marketing.WithPrivacy(privCfg))
		fmt.Printf("insights privacy armed: level %s, k=%d, epsilon=%v, seed %d\n",
			privCfg.Level, privCfg.K, privCfg.Epsilon, privCfg.Seed)
	}

	// Durable state: recover the account from disk (the world itself is
	// rebuilt from the seed above), then persist every mutation before its
	// response is acked.
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(store.Options{
			Dir:           *storeDir,
			Fsync:         fsync,
			SnapshotEvery: *snapshotEvery,
			Metrics:       reg,
		})
		if err != nil {
			return err
		}
		info, err := st.Recover(plat)
		if err != nil {
			return err
		}
		fmt.Printf("durable store at %s (fsync=%s): %s\n", *storeDir, fsync, info)
		serverOpts = append(serverOpts, marketing.WithPersister(st))
	}

	srv, err := marketing.NewServer(plat, serverOpts...)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if *faultRate > 0 {
		inj, err := faults.New(faults.Config{Seed: *faultSeed, Rate: *faultRate, Kinds: kinds}, srv.Metrics())
		if err != nil {
			return err
		}
		handler = inj.Middleware(handler)
		fmt.Printf("fault injection armed: rate %.2f, seed %d, kinds %v\n", *faultRate, *faultSeed, kinds)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("marketing API listening at http://%s (%d users); metrics at /metrics, liveness at /healthz\n",
		ln.Addr(), pop.Len())
	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	// Serve until the listener fails or a shutdown signal arrives, then
	// drain in-flight requests and log the final serving counters so a
	// load-test session ends with a server-side record.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("signal received, draining in-flight requests (budget %s)...\n", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	var drainErr error
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// The drain budget ran out — most likely a delivery day still in
		// flight. Cut the remaining connections, but keep going: the store
		// must still flush and snapshot whatever was acked, or the next boot
		// pays a full WAL replay (and a mid-deliver session is in-memory
		// only, so nothing durable is lost by cutting it).
		drainErr = fmt.Errorf("drain timed out after %s (in-flight requests cut): %w", *drainTimeout, err)
		_ = httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		drainErr = errors.Join(drainErr, err)
	}
	if st != nil {
		// In-flight requests are drained (or cut), so the WAL tail is final:
		// flush it, write the shutdown snapshot, and log where a restart will
		// resume.
		rp, err := st.Close()
		if err != nil {
			return errors.Join(drainErr, fmt.Errorf("closing store: %w", err))
		}
		fmt.Printf("store closed: restart recovers from snapshot seq %d + %d WAL records\n",
			rp.SnapshotSeq, rp.TailRecords)
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("final serving metrics:")
	fmt.Print(srv.Metrics().Snapshot().String())
	return nil
}

func writeExtracts(dir string, fl, nc *voter.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	flPath := filepath.Join(dir, "fl_voter_extract.txt")
	f, err := os.Create(flPath)
	if err != nil {
		return err
	}
	if err := voter.WriteFL(f, fl.Records); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	ncPath := filepath.Join(dir, "ncvoter.txt")
	g, err := os.Create(ncPath)
	if err != nil {
		return err
	}
	if err := voter.WriteNC(g, nc.Records); err != nil {
		return errors.Join(err, g.Close())
	}
	if err := g.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", flPath, ncPath)
	return nil
}
