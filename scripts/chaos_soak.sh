#!/usr/bin/env bash
# Supervised chaos soak: the CI-facing wrapper around cmd/adchaos.
#
# Two real 2-shard fleets of adplatform children run the same deterministic
# CRUD + delivery workload. Fleet A is disturbed by a seeded chaos schedule
# (kill -9, SIGSTOP pauses, slowed and partitioned links) while the in-process
# fleet supervisor detects, quarantines, relaunches (WAL recovery), journal-
# replays, and digest-gates each failed shard back in — no operator, no
# hand-rolled restart. Fleet B runs the acknowledged ops undisturbed. The soak
# passes iff both fleets end byte-identical on the full wire-level insights
# surface, no acknowledged write is lost, and recovery actually happened
# (MTTR observed, below threshold).
#
# The harness binary (router + supervisor + chaos orchestrator in one
# process) is built with -race: the soak doubles as a concurrency test of the
# coordinator/supervisor/journal interplay under real process churn.
#
# Usage: scripts/chaos_soak.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=${1:-/tmp/chaos-soak}
rm -rf "$WORK"
mkdir -p "$WORK/bin"

echo "building binaries (harness with -race)..."
go build -o "$WORK/bin/adplatform" ./cmd/adplatform
go build -race -o "$WORK/bin/adchaos" ./cmd/adchaos

"$WORK/bin/adchaos" \
  -shard-bin "$WORK/bin/adplatform" \
  -shards 2 -seed 7 -voters 4000 -logrows 1500 \
  -chaos-seed 1 -rate 0.6 -ticks 24 -tick 750ms -min-gap 4 -day-every 8 \
  -workdir "$WORK/fleets" -out "$WORK/BENCH_chaos_v1.json"

python3 - "$WORK/BENCH_chaos_v1.json" <<'EOF'
import json, sys

rep = json.load(open(sys.argv[1]))
assert rep['digest']['identical'], (
    f"healed fleet diverged from undisturbed fleet:\n"
    f"  disturbed:   {rep['digest']['disturbed']}\n"
    f"  undisturbed: {rep['digest']['undisturbed']}")
assert rep['events'], "chaos schedule produced no disturbances — the soak proved nothing"

crud = rep['crud']
assert crud['acked'] > 0, "no CRUD op was ever acknowledged"
if crud['degraded_attempted'] > 0:
    assert crud['degraded_acked'] > 0, (
        "CRUD was fully unavailable during a single-shard outage "
        f"({crud['degraded_attempted']} attempts, 0 acked)")

mttr = rep['mttr_ms']
kills = rep['events_by_kind'].get('kill', 0)
if kills > 0:
    assert mttr['count'] > 0, f"{kills} kills but no MTTR observation — nothing ever rejoined"
    assert mttr['p99'] < 30_000, f"MTTR p99 {mttr['p99']:.0f}ms above the 30s threshold"

print(f"chaos soak OK: {len(rep['events'])} disturbances ({rep['events_by_kind']}), "
      f"{crud['acked']}/{crud['attempted']} CRUD acked "
      f"({crud['availability_pct']:.0f}% overall, "
      f"{crud['degraded_availability_pct']:.0f}% while degraded), "
      f"{rep['days']['committed']} days committed, "
      f"MTTR p50 {mttr['p50']:.0f}ms p99 {mttr['p99']:.0f}ms, "
      f"journal replayed {rep['journal']['replayed']} "
      f"(p50 {rep['journal']['replay_p50_ms']:.1f}ms)")
EOF
