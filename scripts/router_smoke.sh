#!/usr/bin/env bash
# Multi-process router smoke: two identical 2-shard fleets (router + two
# adplatform backends with per-shard WAL dirs) run the same deterministic
# adload session. Fleet A additionally has one shard hard-killed (kill -9)
# between load phases and restarted from its WAL; fleet B runs undisturbed.
# The merged wire-level insight digests of both fleets must be identical —
# the crash, recovery, and router fan-out may not change a single byte.
# (The mid-day crash paths — a shard dying inside a tick or inside the
# commit fan-out — are exercised deterministically by the Go e2e tests in
# internal/coordinator; this script covers the process-level story: real
# binaries, real TCP, real WAL recovery.)
#
# Usage: scripts/router_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=${1:-/tmp/router-smoke}
rm -rf "$WORK"
mkdir -p "$WORK/bin"

WORLD="-seed 7 -voters 4000 -logrows 1500"
LOAD="-concurrency 1 -scenarios 3 -ads 2 -audience 100"
MAX_AD_ID=80

echo "building binaries..."
go build -o "$WORK/bin/adplatform" ./cmd/adplatform
go build -o "$WORK/bin/adrouter" ./cmd/adrouter
go build -o "$WORK/bin/adload" ./cmd/adload

declare -a PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() { # port
  for _ in $(seq 1 120); do
    curl -fs "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
    sleep 1
  done
  echo "server on port $1 never became healthy" >&2
  return 1
}

start_shard() { # tag shard port extra...
  local tag=$1 shard=$2 port=$3
  shift 3
  # shellcheck disable=SC2086
  "$WORK/bin/adplatform" -addr "127.0.0.1:$port" $WORLD \
    -store-dir "$WORK/$tag/state$shard" -fsync always -snapshot-every 10 \
    "$@" >>"$WORK/$tag/shard$shard.log" 2>&1 &
  PIDS+=($!)
  eval "${tag}_SHARD${shard}_PID=$!"
}

# digest port file — hash the full insight surface (plain + full breakdown)
# of every ad the deterministic load session created.
digest() { # port file
  local port=$1 out=$2
  : >"$out.raw"
  local found=0
  for i in $(seq 1 "$MAX_AD_ID"); do
    if curl -fs "http://127.0.0.1:$port/v1/ads/ad-$i" >/dev/null 2>&1; then
      found=$((found + 1))
      curl -fs "http://127.0.0.1:$port/v1/insights?ad_id=ad-$i" >>"$out.raw"
      curl -fs "http://127.0.0.1:$port/v1/insights?ad_id=ad-$i&breakdown=age,gender,region" >>"$out.raw"
    fi
  done
  [ "$found" -gt 0 ] || { echo "no ads found behind port $port" >&2; return 1; }
  sha256sum "$out.raw" | cut -d' ' -f1 >"$out"
  echo "  $found ads digested: $(cat "$out")"
}

run_fleet() { # tag router_port shard0_port shard1_port kill_one
  local tag=$1 rport=$2 s0=$3 s1=$4 kill_one=$5
  mkdir -p "$WORK/$tag"
  echo "[$tag] starting 2-shard fleet (router :$rport, shards :$s0 :$s1)..."
  start_shard "$tag" 0 "$s0" -voterdir "$WORK/$tag/extracts"
  start_shard "$tag" 1 "$s1"
  wait_healthy "$s0" || { cat "$WORK/$tag/shard0.log"; return 1; }
  wait_healthy "$s1" || { cat "$WORK/$tag/shard1.log"; return 1; }
  "$WORK/bin/adrouter" -addr "127.0.0.1:$rport" \
    -shards "http://127.0.0.1:$s0,http://127.0.0.1:$s1" \
    -day-retries 8 -day-backoff 1s >>"$WORK/$tag/router.log" 2>&1 &
  PIDS+=($!)
  wait_healthy "$rport" || { cat "$WORK/$tag/router.log"; return 1; }
  curl -fs "http://127.0.0.1:$rport/v1/topology" | grep -q '"shards":2' \
    || { echo "[$tag] router topology is not 2 shards" >&2; return 1; }

  # shellcheck disable=SC2086
  "$WORK/bin/adload" -target "http://127.0.0.1:$rport" \
    -voterfile "$WORK/$tag/extracts/fl_voter_extract.txt" $LOAD -seed 7

  if [ "$kill_one" = yes ]; then
    local victim
    victim=$(eval echo "\$${tag}_SHARD1_PID")
    echo "[$tag] kill -9 shard 1 (pid $victim), restarting from its WAL..."
    kill -9 "$victim"
    wait "$victim" 2>/dev/null || true
    start_shard "$tag" 1 "$s1"
    wait_healthy "$s1" || { cat "$WORK/$tag/shard1.log"; return 1; }
    grep -q 'durable store' "$WORK/$tag/shard1.log" \
      || { echo "[$tag] restarted shard did not recover a store" >&2; return 1; }
  fi

  # Second load phase: drives recovered-shard delivery in fleet A.
  # shellcheck disable=SC2086
  "$WORK/bin/adload" -target "http://127.0.0.1:$rport" \
    -voterfile "$WORK/$tag/extracts/fl_voter_extract.txt" $LOAD -seed 8

  digest "$rport" "$WORK/$tag.digest"
}

run_fleet A 8400 8401 8402 yes
run_fleet B 8410 8411 8412 no

if ! cmp -s "$WORK/A.digest" "$WORK/B.digest"; then
  echo "FAIL: crashed-and-recovered fleet diverged from the undisturbed one:" >&2
  echo "  A (kill -9 + recover): $(cat "$WORK/A.digest")" >&2
  echo "  B (undisturbed):       $(cat "$WORK/B.digest")" >&2
  exit 1
fi
echo "router smoke OK: digest $(cat "$WORK/A.digest") identical across crash/recovery and fresh fleets"
