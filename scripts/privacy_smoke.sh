#!/usr/bin/env bash
# Privacy conformance smoke: the merged-then-privatized insights surface of a
# 2-shard fleet must be byte-identical to a single adplatform privatizing the
# same world under the same policy and noise seed.
#
# Topology A: one adplatform with -delivery-workers 2 and the privacy policy
# armed locally. Topology B: two RAW shard adplatforms behind an adrouter that
# applies the SAME policy to the merged report (merge-then-privatize). Both
# run the identical seeded cmd/adload workload; the smoke then reads every
# created ad's privatized insights (full + age,gender,region breakdown) from
# both surfaces and fails on any digest divergence — which would mean the
# noise stream or the suppression decisions depend on the process topology,
# reopening the cross-surface averaging attack the content-keyed stream
# closes.
#
# Usage: scripts/privacy_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=${1:-/tmp/privacy-smoke}
rm -rf "$WORK"
mkdir -p "$WORK/bin" "$WORK/logs"

WORLD="-seed 7 -voters 4000 -logrows 1500 -review-reject 0"
# Servers take the full policy; the load client only records k/epsilon in its
# report (-privacy-seed is a server-side knob).
PRIVACY="-privacy-k 5 -privacy-epsilon 1 -privacy-seed 42"
LOAD_PRIVACY="-privacy-k 5 -privacy-epsilon 1"
SCENARIOS=4
ADS=2

echo "building binaries..."
go build -o "$WORK/bin/adplatform" ./cmd/adplatform
go build -o "$WORK/bin/adrouter" ./cmd/adrouter
go build -o "$WORK/bin/adload" ./cmd/adload

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 120); do
    curl -fs "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 1
  done
  echo "server at $1 never became healthy"
  return 1
}

echo "starting topology A: single adplatform, privacy armed locally..."
# shellcheck disable=SC2086
"$WORK/bin/adplatform" -addr 127.0.0.1:8410 $WORLD $PRIVACY \
  -delivery-workers 2 -voterdir "$WORK/extracts" >"$WORK/logs/single.log" 2>&1 &
PIDS+=($!)

echo "starting topology B: 2 raw shards behind a privatizing router..."
# shellcheck disable=SC2086
"$WORK/bin/adplatform" -addr 127.0.0.1:8421 $WORLD >"$WORK/logs/shard0.log" 2>&1 &
PIDS+=($!)
# shellcheck disable=SC2086
"$WORK/bin/adplatform" -addr 127.0.0.1:8422 $WORLD >"$WORK/logs/shard1.log" 2>&1 &
PIDS+=($!)
wait_healthy 127.0.0.1:8410 || { cat "$WORK/logs/single.log"; exit 1; }
wait_healthy 127.0.0.1:8421 || { cat "$WORK/logs/shard0.log"; exit 1; }
wait_healthy 127.0.0.1:8422 || { cat "$WORK/logs/shard1.log"; exit 1; }
# shellcheck disable=SC2086
"$WORK/bin/adrouter" -addr 127.0.0.1:8420 $PRIVACY \
  -shards http://127.0.0.1:8421,http://127.0.0.1:8422 >"$WORK/logs/router.log" 2>&1 &
PIDS+=($!)
wait_healthy 127.0.0.1:8420 || { cat "$WORK/logs/router.log"; exit 1; }

run_load() {
  # shellcheck disable=SC2086
  "$WORK/bin/adload" -target "http://$1" $LOAD_PRIVACY \
    -voterfile "$WORK/extracts/fl_voter_extract.txt" \
    -scenarios $SCENARIOS -concurrency 1 -ads $ADS -audience 120 \
    -seed 7 -delivery-workers 2 -out "$2"
}
echo "running the seeded workload against both topologies..."
run_load 127.0.0.1:8410 "$WORK/report-single.json"
run_load 127.0.0.1:8420 "$WORK/report-router.json"

digest() {
  # The -concurrency 1 workload allocates IDs deterministically, but ads
  # share one counter with campaigns and audiences: scan the range and keep
  # the IDs that resolve, recording how many did (both topologies must
  # agree on the set AND the bytes).
  local host=$1 out=$2 found=0
  : >"$out"
  for i in $(seq 1 $((SCENARIOS * (ADS + 4)))); do
    if body=$(curl -fs "http://$host/v1/insights?ad_id=ad-$i"); then
      found=$((found + 1))
      printf '%s\n' "$body" >>"$out"
      curl -fs "http://$host/v1/insights?ad_id=ad-$i&breakdown=age,gender,region" >>"$out"
      echo >>"$out"
    fi
  done
  echo "$found" >"$out.count"
}
echo "reading privatized insights from both surfaces..."
digest 127.0.0.1:8410 "$WORK/insights-single.txt"
digest 127.0.0.1:8420 "$WORK/insights-router.txt"

python3 - "$WORK" "$((SCENARIOS * ADS))" <<'EOF'
import hashlib, json, sys

work, want_ads = sys.argv[1], int(sys.argv[2])
def sha(path):
    return hashlib.sha256(open(path, 'rb').read()).hexdigest()

for name in ('single', 'router'):
    n = int(open(f'{work}/insights-{name}.txt.count').read())
    assert n == want_ads, f"{name}: found insights for {n} ads, want {want_ads}"

single = sha(f'{work}/insights-single.txt')
router = sha(f'{work}/insights-router.txt')
assert single == router, (
    "privatized insights diverged between topologies:\n"
    f"  single: {single}\n"
    f"  router: {router}\n"
    "see insights-single.txt / insights-router.txt in the workdir")

for name in ('single', 'router'):
    rep = json.load(open(f'{work}/report-{name}.json'))
    assert rep['errors'] == 0, f"{name}: {rep['errors']} request errors"
    assert rep['scenarios_failed'] == 0, f"{name}: scenarios failed"
    priv = rep.get('privacy')
    assert priv, f"{name}: load report has no privacy block"
    assert priv['privatized_responses'] > 0, f"{name}: no response was privatized"

body = open(f'{work}/insights-single.txt').read()
assert '"privacy"' in body, "insights responses carry no privacy block"
print(f"privacy smoke OK: digest {single[:16]}… identical across topologies, "
      "all responses privatized, workload error-free")
EOF
