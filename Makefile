GO ?= go

.PHONY: build test race lint lint-json vet adlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the same checks as the CI lint job: go vet plus the project's
# custom analyzer suite (cmd/adlint).
lint: vet adlint

vet:
	$(GO) vet ./...

adlint:
	$(GO) run ./cmd/adlint ./...

# lint-json emits the adlint findings as a JSON array (file/line/column/
# analyzer/message) — the same stream CI converts into GitHub problem
# annotations. Exit status matches `make adlint`.
lint-json:
	$(GO) run ./cmd/adlint -json ./...
