GO ?= go

.PHONY: build test race lint vet adlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the same checks as the CI lint job: go vet plus the project's
# custom analyzer suite (cmd/adlint).
lint: vet adlint

vet:
	$(GO) vet ./...

adlint:
	$(GO) run ./cmd/adlint ./...
